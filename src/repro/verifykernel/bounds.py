"""Symbolic bounds proofs for the JIT kernel templates.

Interprets each parsed kernel (:mod:`repro.verifykernel.cparse`) over a
symbolic domain and proves every array subscript in bounds — across the
main register-blocked tiles, the remainder loops, and the OpenMP panel
decomposition — for *all* nonnegative values of the size/stride
parameters, not just the shapes a test happens to run.

The value domain is a canonical polynomial over nonnegative atoms:
parameters (``bi``, ``cs``, …), per-loop-instance variables, and three
opaque-but-monotone operators that C index math introduces —
``Min``/``Max`` (from ternaries and the clamp pattern
``if (a > b) a = b;``) and ``Div`` (C integer division of nonnegatives,
e.g. the OpenMP panel boundaries ``bj * t / threads``). Loop variables
are eliminated innermost-first by monotone endpoint substitution
(``Div`` is nondecreasing in its numerator and nonincreasing in its
denominator; ``Min``/``Max`` are nondecreasing in their arguments), then
:func:`prove_ge0` discharges the comparison with case splits over
``Min``/``Max`` (an atom pointwise *equals* one of its arguments),
floor-division relaxations (``b·Div(a,b)`` lies in ``[a−b+1, a]``), and
branch facts gathered from guards (``if (blk <= 0 || blk >= n) return;``
refines ``1 ≤ blk ≤ n−1`` on the fall-through path).

Every access must decompose as ``base + row·stride + col`` against the
array's declared stride symbol with ``0 ≤ row < rows`` and
``0 ≤ col < cols`` — the *strong* per-row contract. This is strictly
stronger than what ASan can observe: a subscript that walks out of its
logical row but lands inside the allocation (the classic strided-view
bug) fails the proof here while never touching a redzone.

Call sites are checked interprocedurally by summary: the callee's
declared access region is instantiated with the actual arguments
(pointer bases decomposed against the caller's stride) and proven to lie
inside the caller's own declared extents — this is what validates the
blocked-FW stage calls with their ``d + k0*s + k0`` diagonal offsets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.verifykernel import cparse
from repro.verifykernel.cparse import (
    Assign,
    Bin,
    Block,
    Call,
    Cast,
    Continue,
    CParseError,
    Decl,
    For,
    FuncDef,
    If,
    Index,
    Num,
    Return,
    Ternary,
    Unary,
    Var,
)

__all__ = [
    "Access",
    "CallSite",
    "Finding",
    "KernelAnalysis",
    "LoopFrame",
    "Poly",
    "Region",
    "analyze_kernel",
    "check_kernel_bounds",
    "eliminate",
    "prove_ge0",
    "prove_le",
]

_uid_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Atoms and canonical polynomials
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Sym:
    """A nonnegative kernel parameter."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LoopSym:
    """One loop instance's induction variable (unique per loop entry)."""

    name: str
    uid: int

    def __repr__(self) -> str:
        return f"{self.name}#{self.uid}"


@dataclass(frozen=True)
class MinAtom:
    args: tuple["Poly", ...]

    def __repr__(self) -> str:
        return f"min({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class MaxAtom:
    args: tuple["Poly", ...]

    def __repr__(self) -> str:
        return f"max({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class DivAtom:
    """C integer division ``num / den`` of nonnegatives, ``den >= 1``."""

    num: "Poly"
    den: "Poly"

    def __repr__(self) -> str:
        return f"({self.num!r})//({self.den!r})"


Atom = Sym | LoopSym | MinAtom | MaxAtom | DivAtom

#: a monomial: sorted ((atom, exponent), ...)
Mono = tuple[tuple[Atom, int], ...]


@dataclass(frozen=True)
class Poly:
    """Canonical sum of integer-coefficient monomials over atoms."""

    terms: tuple[tuple[Mono, int], ...]

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coeff in self.terms:
            factors = "*".join(
                repr(a) if e == 1 else f"{a!r}^{e}" for a, e in mono
            )
            parts.append(f"{coeff}*{factors}" if factors else str(coeff))
        return " + ".join(parts)

    def __add__(self, other: "Poly | int") -> "Poly":
        other = _as_poly(other)
        merged = dict(self.terms)
        for mono, coeff in other.terms:
            merged[mono] = merged.get(mono, 0) + coeff
        return _from_dict(merged)

    def __sub__(self, other: "Poly | int") -> "Poly":
        return self + _as_poly(other) * -1

    def __mul__(self, other: "Poly | int") -> "Poly":
        other = _as_poly(other)
        out: dict[Mono, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                exps: dict[Atom, int] = {}
                for a, e in m1 + m2:
                    exps[a] = exps.get(a, 0) + e
                mono = tuple(sorted(exps.items(), key=lambda kv: repr(kv[0])))
                out[mono] = out.get(mono, 0) + c1 * c2
        return _from_dict(out)

    @property
    def const_value(self) -> int | None:
        """The integer value when constant, else ``None``."""
        if not self.terms:
            return 0
        if len(self.terms) == 1 and self.terms[0][0] == ():
            return self.terms[0][1]
        return None

    def atoms(self) -> set[Atom]:
        return {a for mono, _ in self.terms for a, _ in mono}

    def contains(self, sym: Atom) -> bool:
        def in_atom(a: Atom) -> bool:
            if a == sym:
                return True
            if isinstance(a, (MinAtom, MaxAtom)):
                return any(arg.contains(sym) for arg in a.args)
            if isinstance(a, DivAtom):
                return a.num.contains(sym) or a.den.contains(sym)
            return False

        return any(in_atom(a) for mono, _ in self.terms for a, _ in mono)


def _from_dict(terms: dict[Mono, int]) -> Poly:
    items = tuple(
        sorted(
            ((m, c) for m, c in terms.items() if c != 0),
            key=lambda mc: repr(mc[0]),
        )
    )
    return Poly(items)


def _as_poly(value: "Poly | int") -> Poly:
    if isinstance(value, Poly):
        return value
    return Poly((((), value),)) if value else Poly(())


def P(value: int) -> Poly:
    return _as_poly(value)


def _atom_poly(atom: Atom) -> Poly:
    return Poly(((((atom, 1),), 1),))


def make_min(a: Poly, b: Poly) -> Poly:
    if a == b:
        return a
    args = tuple(sorted((a, b), key=repr))
    return _atom_poly(MinAtom(args))


def make_max(a: Poly, b: Poly) -> Poly:
    if a == b:
        return a
    args = tuple(sorted((a, b), key=repr))
    return _atom_poly(MaxAtom(args))


def make_div(num: Poly, den: Poly) -> Poly:
    if den.const_value == 1:
        return num
    nc, dc = num.const_value, den.const_value
    if nc is not None and dc is not None and dc > 0:
        return P(nc // dc)
    return _atom_poly(DivAtom(num, den))


# ---------------------------------------------------------------------------
# The prover
# ---------------------------------------------------------------------------
def _substitute_atom(p: Poly, target: Atom, value: Poly) -> Poly:
    """Replace every occurrence of ``target`` (also nested) with ``value``."""
    out = P(0)
    for mono, coeff in p.terms:
        term = P(coeff)
        for a, e in mono:
            if a == target:
                base: Poly = value
            elif isinstance(a, MinAtom):
                base = _remake_min(
                    tuple(_substitute_atom(arg, target, value) for arg in a.args)
                )
            elif isinstance(a, MaxAtom):
                base = _remake_max(
                    tuple(_substitute_atom(arg, target, value) for arg in a.args)
                )
            elif isinstance(a, DivAtom):
                base = make_div(
                    _substitute_atom(a.num, target, value),
                    _substitute_atom(a.den, target, value),
                )
            else:
                base = _atom_poly(a)
            for _ in range(e):
                term = term * base
        out = out + term
    return out


def _remake_min(args: tuple[Poly, ...]) -> Poly:
    if len(set(args)) == 1:
        return args[0]
    return _atom_poly(MinAtom(tuple(sorted(set(args), key=repr))))


def _remake_max(args: tuple[Poly, ...]) -> Poly:
    if len(set(args)) == 1:
        return args[0]
    return _atom_poly(MaxAtom(tuple(sorted(set(args), key=repr))))


def _linear_decompose(p: Poly, atom: Atom) -> tuple[Poly, Poly] | None:
    """``p == q*atom + rest`` with ``atom`` absent from q and rest, or None."""
    q_terms: dict[Mono, int] = {}
    rest_terms: dict[Mono, int] = {}
    for mono, coeff in p.terms:
        exps = dict(mono)
        e = exps.pop(atom, 0)
        reduced = tuple(sorted(exps.items(), key=lambda kv: repr(kv[0])))
        if e == 0:
            if any(
                isinstance(a, (MinAtom, MaxAtom, DivAtom))
                and _atom_poly(a).contains(atom)
                for a, _ in mono
            ):
                return None  # atom nested inside another atom — not linear
            rest_terms[mono] = rest_terms.get(mono, 0) + coeff
        elif e == 1:
            if any(_atom_poly(a).contains(atom) for a, _ in reduced):
                return None
            q_terms[reduced] = q_terms.get(reduced, 0) + coeff
        else:
            return None
    return _from_dict(q_terms), _from_dict(rest_terms)


def prove_ge0(p: Poly, facts: tuple[Poly, ...] = (), depth: int = 6) -> bool:
    """Soundly prove ``p >= 0`` for all nonnegative atom values.

    ``facts`` are polynomials known nonnegative on this path (from branch
    guards). Incomplete by design: ``False`` means "not proven", and the
    caller reports a finding — never "proven unsafe".
    """
    if depth <= 0:
        return False
    # fast path: every coefficient nonnegative over nonnegative atoms
    if all(coeff >= 0 for _, coeff in p.terms):
        return True
    if p.const_value is not None:
        return p.const_value >= 0
    # case split on a Min/Max atom: pointwise the atom equals one of its
    # arguments, so substituting each argument everywhere and proving all
    # (conjunction) is always sound; when the atom's coefficients all
    # pull one way a single branch suffices (disjunction)
    for atom in sorted(p.atoms(), key=repr):
        if isinstance(atom, (MinAtom, MaxAtom)):
            coeffs = [
                coeff for mono, coeff in p.terms if atom in dict(mono)
            ]
            branches = [
                prove_ge0(_substitute_atom(p, atom, arg), facts, depth - 1)
                for arg in atom.args
            ]
            all_neg = all(c < 0 for c in coeffs)
            all_pos = all(c > 0 for c in coeffs)
            if isinstance(atom, MinAtom) and all_neg and any(branches):
                return True  # -Min >= -arg for every arg
            if isinstance(atom, MaxAtom) and all_pos and any(branches):
                return True  # +Max >= +arg for every arg
            if all(branches):
                return True  # pointwise split
    # floor-division relaxation: b*Div(a,b) ∈ [a-b+1, a] (a>=0, b>=1)
    for atom in sorted(p.atoms(), key=repr):
        if isinstance(atom, DivAtom):
            decomp = _linear_decompose(p, atom)
            if decomp is None:
                continue
            q, rest = decomp
            a, b = atom.num, atom.den
            if not prove_ge0(a, facts, depth - 1):
                continue
            if not prove_ge0(b - 1, facts, depth - 1):
                continue
            if prove_ge0(q, facts, depth - 1):
                # Div >= (a-b+1)/b and Div >= 0
                if prove_ge0(rest, facts, depth - 1):
                    return True
                if prove_ge0(q * (a - b + 1) + rest * b, facts, depth - 1):
                    return True
            if prove_ge0(P(0) - q, facts, depth - 1):
                # Div <= a/b and Div <= a
                if prove_ge0(q * a + rest * b, facts, depth - 1):
                    return True
                if prove_ge0(q * a + rest, facts, depth - 1):
                    return True
    # same-denominator floor-division monotonicity:
    # Div(a,b) - Div(c,b) >= 0 when a >= c — cancels the matched pair
    # (this is what proves adjacent OpenMP panels share their boundary)
    bare = {
        mono[0][0]: coeff
        for mono, coeff in p.terms
        if len(mono) == 1 and mono[0][1] == 1 and isinstance(mono[0][0], DivAtom)
    }
    for pos, pc in bare.items():
        if pc <= 0:
            continue
        for neg, nc in bare.items():
            if nc >= 0 or pos.den != neg.den:
                continue
            if not prove_ge0(pos.num - neg.num, facts, depth - 1):
                continue
            k = min(pc, -nc)
            reduced = (
                p
                - _atom_poly(pos) * k
                + _atom_poly(neg) * k
            )
            if prove_ge0(reduced, facts, depth - 1):
                return True
    # spend a branch fact: p >= fact + (p - fact), fact >= 0
    for fact in facts:
        if prove_ge0(p - fact, facts, depth - 1):
            return True
    return False


def prove_le(a: Poly, b: Poly, facts: tuple[Poly, ...] = ()) -> bool:
    return prove_ge0(b - a, facts)


# ---------------------------------------------------------------------------
# Monotone endpoint elimination of loop variables
# ---------------------------------------------------------------------------
def _bound_atom(a: Atom, sym: LoopSym, lo: Poly, hi: Poly, upper: bool) -> Poly | None:
    """Rebuild one atom with ``sym`` eliminated toward the wanted bound."""
    if isinstance(a, MinAtom) or isinstance(a, MaxAtom):
        new_args = []
        for arg in a.args:
            sub = bound_subst(arg, sym, lo, hi, upper)  # Min/Max nondecreasing
            if sub is None:
                return None
            new_args.append(sub)
        return (
            _remake_min(tuple(new_args))
            if isinstance(a, MinAtom)
            else _remake_max(tuple(new_args))
        )
    if isinstance(a, DivAtom):
        num = bound_subst(a.num, sym, lo, hi, upper)  # nondecreasing in num
        den = bound_subst(a.den, sym, lo, hi, not upper)  # nonincreasing in den
        if num is None or den is None:
            return None
        return make_div(num, den)
    return _atom_poly(a)


def bound_subst(
    p: Poly, sym: LoopSym, lo: Poly | None, hi: Poly | None, upper: bool
) -> Poly | None:
    """An upper (or lower) bound of ``p`` over ``sym ∈ [lo, hi]``.

    Sound because every expression the kernels build is affine in each
    loop variable, with variables nested only inside monotone atoms; a
    shape outside that (``sym`` squared, or multiplied into an atom that
    also contains it) returns ``None`` and becomes a finding.
    """
    out = P(0)
    for mono, coeff in p.terms:
        direct = dict(mono).get(sym, 0)
        nested = [
            a
            for a, _ in mono
            if not isinstance(a, (Sym, LoopSym)) and _atom_poly(a).contains(sym)
        ]
        if direct > 1 or (direct and nested):
            return None
        term = P(coeff)
        for a, e in mono:
            if a == sym:
                endpoint = hi if (upper == (coeff > 0)) else lo
                if endpoint is None:
                    return None
                base: Poly = endpoint
            elif a in nested:
                rebuilt = _bound_atom(a, sym, lo or P(0), hi or P(0), upper == (coeff > 0))
                if rebuilt is None or (
                    (hi is None or lo is None) and _atom_poly(a).contains(sym)
                ):
                    return None
                base = rebuilt
            else:
                base = _atom_poly(a)
            for _ in range(e):
                term = term * base
        out = out + term
    return out


@dataclass(frozen=True)
class LoopFrame:
    atom: LoopSym
    lo: Poly | None
    hi: Poly | None  # inclusive
    parallel: bool = False


def eliminate(
    p: Poly, frames: tuple[LoopFrame, ...], upper: bool
) -> Poly | None:
    """Eliminate loop variables innermost-first toward a bound."""
    out: Poly | None = p
    for frame in reversed(frames):
        if out is None:
            return None
        if not out.contains(frame.atom):
            continue
        out = bound_subst(out, frame.atom, frame.lo, frame.hi, upper)
    return out


# ---------------------------------------------------------------------------
# Abstract interpretation of a kernel body
# ---------------------------------------------------------------------------
class _Opaque:
    def __repr__(self) -> str:
        return "<opaque>"


OPAQUE = _Opaque()


@dataclass(frozen=True)
class PtrVal:
    root: str
    offset: Poly


@dataclass(frozen=True)
class RangeVal:
    lo: Poly | None
    hi: Poly | None


Value = Poly | PtrVal | RangeVal | _Opaque


@dataclass(frozen=True)
class Access:
    array: str
    offset: Poly
    write: bool
    line: int
    frames: tuple[LoopFrame, ...]
    facts: tuple[Poly, ...]


@dataclass(frozen=True)
class CallSite:
    name: str
    args: tuple[Value, ...]
    line: int
    frames: tuple[LoopFrame, ...]
    facts: tuple[Poly, ...]


@dataclass(frozen=True)
class Finding:
    check: str
    kernel: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.kernel}:{self.line}: [{self.check}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "kernel": self.kernel,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class KernelAnalysis:
    """Everything the interpreter learned about one kernel body."""

    name: str
    fn: FuncDef
    accesses: list[Access] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)


class _Interpreter:
    def __init__(self, fn: FuncDef, known_kernels: frozenset[str]) -> None:
        self.fn = fn
        self.known_kernels = known_kernels
        self.result = KernelAnalysis(fn.name, fn)
        self.env: dict[str, Value] = {}
        self.int_typed: set[str] = set()
        self.frames: list[LoopFrame] = []
        self.facts: list[Poly] = []
        for p in fn.params:
            if p.pointer:
                self.env[p.name] = PtrVal(p.name, P(0))
            elif p.ctype in cparse.INT_TYPES:
                self.env[p.name] = _atom_poly(Sym(p.name))
                self.int_typed.add(p.name)
            else:
                self.env[p.name] = OPAQUE

    # -- bookkeeping -------------------------------------------------------
    def flag(self, check: str, line: int, message: str) -> None:
        self.result.findings.append(Finding(check, self.fn.name, line, message))

    def record_access(self, base: Value, index: Value, write: bool, line: int) -> None:
        if not isinstance(base, PtrVal):
            self.flag("bounds", line, "subscript on an unresolvable pointer")
            return
        if not isinstance(index, Poly):
            self.flag("bounds", line, "subscript index is not affine in loop variables")
            return
        self.result.accesses.append(
            Access(
                base.root,
                base.offset + index,
                write,
                line,
                tuple(self.frames),
                tuple(self.facts),
            )
        )

    # -- expression evaluation --------------------------------------------
    def eval(self, e: cparse.Expr) -> Value:
        if isinstance(e, Num):
            return P(e.value)
        if isinstance(e, Var):
            if e.name in self.env:
                return self.env[e.name]
            if e.name == "INT32_MAX":
                return P(2**31 - 1)
            self.flag("parse", e.line, f"unknown identifier {e.name!r}")
            return OPAQUE
        if isinstance(e, Cast):
            val = self.eval(e.expr)
            return val if e.ctype in cparse.INT_TYPES and isinstance(val, Poly) else (
                val if isinstance(val, Poly) else OPAQUE
            )
        if isinstance(e, Unary):
            val = self.eval(e.expr)
            if e.op == "-" and isinstance(val, Poly):
                return val * -1
            return OPAQUE
        if isinstance(e, Bin):
            return self._eval_bin(e)
        if isinstance(e, Ternary):
            return self._eval_ternary(e)
        if isinstance(e, Index):
            base = self.eval(e.base)
            index = self.eval(e.index)
            self.record_access(base, index, write=False, line=e.line)
            return OPAQUE
        if isinstance(e, Call):
            for arg in e.args:
                self.eval(arg)
            if e.name in self.known_kernels:
                self.flag(
                    "contract", e.line, f"kernel call {e.name!r} used as an expression"
                )
            return OPAQUE
        raise CParseError(f"unhandled expression node {e!r}")

    def _eval_bin(self, e: Bin) -> Value:
        left = self.eval(e.left)
        right = self.eval(e.right)
        if e.op == "+":
            if isinstance(left, PtrVal) and isinstance(right, Poly):
                return PtrVal(left.root, left.offset + right)
            if isinstance(right, PtrVal) and isinstance(left, Poly):
                return PtrVal(right.root, right.offset + left)
            if isinstance(left, Poly) and isinstance(right, Poly):
                return left + right
        elif e.op == "-":
            if isinstance(left, PtrVal) and isinstance(right, Poly):
                return PtrVal(left.root, left.offset - right)
            if isinstance(left, Poly) and isinstance(right, Poly):
                return left - right
        elif e.op == "*":
            if isinstance(left, Poly) and isinstance(right, Poly):
                return left * right
        elif e.op == "/":
            if isinstance(left, Poly) and isinstance(right, Poly):
                return make_div(left, right)
        return OPAQUE

    def _eval_ternary(self, e: Ternary) -> Value:
        then = self.eval(e.then)
        other = self.eval(e.other)
        if (
            isinstance(e.cond, Bin)
            and e.cond.op in ("<", "<=", ">", ">=")
            and isinstance(then, Poly)
            and isinstance(other, Poly)
        ):
            lhs = self.eval(e.cond.left)
            rhs = self.eval(e.cond.right)
            if isinstance(lhs, Poly) and isinstance(rhs, Poly):
                smaller_first = e.cond.op in ("<", "<=")
                if then == lhs and other == rhs:
                    return make_min(lhs, rhs) if smaller_first else make_max(lhs, rhs)
                if then == rhs and other == lhs:
                    return make_max(lhs, rhs) if smaller_first else make_min(lhs, rhs)
        else:
            self.eval(e.cond)
        return OPAQUE

    # -- branch facts ------------------------------------------------------
    def _cond_facts(self, cond: cparse.Expr, negate: bool) -> list[Poly]:
        """``>= 0`` facts implied by ``cond`` being true (or false)."""
        if isinstance(cond, Unary) and cond.op == "!":
            return self._cond_facts(cond.expr, not negate)
        if isinstance(cond, Bin) and cond.op == "&&":
            if not negate:
                return self._cond_facts(cond.left, False) + self._cond_facts(
                    cond.right, False
                )
            return []  # ¬(a && b) is a disjunction — no single fact
        if isinstance(cond, Bin) and cond.op == "||":
            if negate:
                return self._cond_facts(cond.left, True) + self._cond_facts(
                    cond.right, True
                )
            return []
        if isinstance(cond, Bin) and cond.op in ("<", "<=", ">", ">=", "==", "!="):
            left = self.eval(cond.left)
            right = self.eval(cond.right)
            if not (isinstance(left, Poly) and isinstance(right, Poly)):
                return []
            op = cond.op
            if negate:
                op = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}[op]
            if op == "<":
                return [right - left - 1]
            if op == "<=":
                return [right - left]
            if op == ">":
                return [left - right - 1]
            if op == ">=":
                return [left - right]
            if op == "==":
                return [left - right, right - left]
            return []  # != carries no one-sided fact
        if isinstance(cond, Var):
            val = self.eval(cond)
            if isinstance(val, Poly):
                # truthy nonnegative integer means >= 1; falsy means == 0
                return [val - 1] if not negate else [val * -1, val]
            return []
        return []

    def _usable_facts(self, facts: list[Poly]) -> list[Poly]:
        """Keep only loop-variable-free facts (valid at any program point)."""
        live = {f.atom for f in self.frames}
        out = []
        for f in facts:
            if not any(f.contains(a) for a in live) and not any(
                isinstance(a, LoopSym) for a in f.atoms()
            ):
                out.append(f)
        return out

    # -- statements --------------------------------------------------------
    def run(self) -> KernelAnalysis:
        try:
            self.exec_block(self.fn.body)
        except CParseError as exc:
            self.flag("parse", 0, str(exc))
        return self.result

    def exec_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: cparse.Stmt) -> None:
        if isinstance(stmt, Decl):
            self.exec_decl(stmt)
        elif isinstance(stmt, Assign):
            self.exec_assign(stmt)
        elif isinstance(stmt, If):
            self.exec_if(stmt)
        elif isinstance(stmt, For):
            self.exec_for(stmt)
        elif isinstance(stmt, (Return, Continue)):
            pass
        elif isinstance(stmt, Block):
            self.exec_block(stmt)
        elif isinstance(stmt, Call):
            self.exec_call(stmt)
        else:
            raise CParseError(f"unhandled statement {stmt!r}")

    def exec_decl(self, stmt: Decl) -> None:
        numeric = stmt.ctype in cparse.INT_TYPES
        for item in stmt.items:
            value: Value = RangeVal(None, None)
            if item.init is not None:
                value = self.eval(item.init)
            if item.pointer:
                self.env[item.name] = value if isinstance(value, PtrVal) else OPAQUE
            elif numeric:
                self.env[item.name] = value if isinstance(value, Poly) else (
                    value if isinstance(value, RangeVal) else OPAQUE
                )
                self.int_typed.add(item.name)
            else:
                self.env[item.name] = OPAQUE

    def exec_assign(self, stmt: Assign) -> None:
        if isinstance(stmt.target, Index):
            base = self.eval(stmt.target.base)
            index = self.eval(stmt.target.index)
            if stmt.value is not None:
                self.eval(stmt.value)
            if stmt.op != "=":
                self.record_access(base, index, write=False, line=stmt.line)
            self.record_access(base, index, write=True, line=stmt.line)
            return
        assert isinstance(stmt.target, Var)
        name = stmt.target.name
        if stmt.op == "=":
            value = self.eval(stmt.value) if stmt.value is not None else OPAQUE
            if name in self.int_typed and not isinstance(value, (Poly, RangeVal)):
                value = OPAQUE
            self.env[name] = value
        elif stmt.op in ("+=", "-=", "++", "--"):
            cur = self.env.get(name, OPAQUE)
            delta: Value = P(1) if stmt.op in ("++", "--") else (
                self.eval(stmt.value) if stmt.value is not None else OPAQUE
            )
            if isinstance(cur, Poly) and isinstance(delta, Poly):
                sign = 1 if stmt.op in ("+=", "++") else -1
                self.env[name] = cur + delta * sign
            else:
                self.env[name] = OPAQUE
        else:
            self.env[name] = OPAQUE

    def _match_clamp(self, stmt: If) -> bool:
        """``if (v > e) v = e;`` → ``v = min(v, e)`` (and the < mirror)."""
        if stmt.other is not None or not isinstance(stmt.cond, Bin):
            return False
        if stmt.cond.op not in ("<", "<=", ">", ">="):
            return False
        if len(stmt.then.stmts) != 1:
            return False
        inner = stmt.then.stmts[0]
        if not (
            isinstance(inner, Assign)
            and inner.op == "="
            and isinstance(inner.target, Var)
            and isinstance(stmt.cond.left, Var)
            and inner.target.name == stmt.cond.left.name
        ):
            return False
        cur = self.env.get(inner.target.name)
        new = self.eval(inner.value) if inner.value is not None else None
        rhs = self.eval(stmt.cond.right)
        if not (isinstance(cur, Poly) and isinstance(new, Poly) and new == rhs):
            return False
        if stmt.cond.op in (">", ">="):
            self.env[inner.target.name] = make_min(cur, new)
        else:
            self.env[inner.target.name] = make_max(cur, new)
        return True

    @staticmethod
    def _ends_with_return(block: Block) -> bool:
        return bool(block.stmts) and isinstance(block.stmts[-1], Return)

    def exec_if(self, stmt: If) -> None:
        if self._match_clamp(stmt):
            return
        then_facts = self._usable_facts(self._cond_facts(stmt.cond, negate=False))
        saved_env = dict(self.env)
        saved_facts = list(self.facts)
        self.facts.extend(then_facts)
        self.exec_block(stmt.then)
        self.env = dict(saved_env)
        self.facts = list(saved_facts)
        if stmt.other is not None:
            self.facts.extend(self._usable_facts(self._cond_facts(stmt.cond, True)))
            self.exec_block(stmt.other)
            self.env = dict(saved_env)
            self.facts = list(saved_facts)
        if self._ends_with_return(stmt.then) and stmt.other is None:
            # fall-through path: the guard must have been false
            self.facts.extend(self._usable_facts(self._cond_facts(stmt.cond, True)))

    def exec_for(self, stmt: For) -> None:
        if stmt.init is not None:
            self.exec_stmt(stmt.init)
        if stmt.step is None or not isinstance(stmt.step.target, Var):
            self.flag("parse", stmt.line, "for loop without a recognizable step")
            return
        var = stmt.step.target.name
        if stmt.step.op not in ("+=", "++"):
            self.flag("parse", stmt.line, f"unsupported loop step {stmt.step.op!r}")
            return
        entry = self.env.get(var, OPAQUE)
        lo: Poly | None
        if isinstance(entry, Poly):
            lo = entry
        elif isinstance(entry, RangeVal):
            lo = entry.lo
        else:
            lo = None
        atom = LoopSym(var, next(_uid_counter))
        hi = self._loop_upper(stmt.cond, atom, var) if stmt.cond is not None else None
        if hi is None:
            self.flag(
                "bounds", stmt.line, f"cannot bound loop variable {var!r} from its guard"
            )
        parallel = bool(stmt.pragma and "parallel" in stmt.pragma)
        self.env[var] = _atom_poly(atom)
        self.int_typed.add(var)
        self.frames.append(LoopFrame(atom, lo, hi, parallel))
        self.exec_block(stmt.body)
        self.frames.pop()
        self.env[var] = RangeVal(lo, None)

    def _loop_upper(self, cond: cparse.Expr, atom: LoopSym, var: str) -> Poly | None:
        """Inclusive upper bound of the loop variable from its guard."""
        if not (isinstance(cond, Bin) and cond.op in ("<", "<=")):
            return None
        saved = self.env.get(var)
        self.env[var] = _atom_poly(atom)
        left = self.eval(cond.left)
        right = self.eval(cond.right)
        if saved is not None:
            self.env[var] = saved
        if not (isinstance(left, Poly) and isinstance(right, Poly)):
            return None
        if right.contains(atom):
            return None
        decomp = _linear_decompose(left, atom)
        if decomp is None:
            return None
        q, rest = decomp
        if q.const_value != 1:
            return None
        # var + rest < right  →  var <= right - rest - 1
        bound = right - rest
        if cond.op == "<":
            bound = bound - 1
        return bound

    def exec_call(self, stmt: Call) -> None:
        args = tuple(self.eval(a) for a in stmt.args)
        if stmt.name in self.known_kernels:
            self.result.calls.append(
                CallSite(
                    stmt.name,
                    args,
                    stmt.line,
                    tuple(self.frames),
                    tuple(self.facts),
                )
            )


def analyze_kernel(
    fn: FuncDef, known_kernels: frozenset[str] = frozenset()
) -> KernelAnalysis:
    """Interpret one kernel body; returns accesses, call sites, findings."""
    return _Interpreter(fn, known_kernels).run()


# ---------------------------------------------------------------------------
# Bounds checking against declared contracts
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Region:
    """A rectangular access region in row/column space (inclusive bounds)."""

    array: str
    row_lo: Poly
    row_hi: Poly
    col_lo: Poly
    col_hi: Poly
    write: bool


def decompose_offset(offset: Poly, stride: str) -> tuple[Poly, Poly] | None:
    """Split ``offset`` into ``(row, col)`` against a stride symbol."""
    return _linear_decompose(offset, Sym(stride))


def _extent_poly(expr_text: str) -> Poly:
    """Parse a contract extent expression (parameter names and + - * /)."""
    tokens = cparse._tokenize(expr_text)
    parser = cparse._Parser(tokens)
    parsed = parser.parse_expr()

    def conv(e: cparse.Expr) -> Poly:
        if isinstance(e, Num):
            return P(e.value)
        if isinstance(e, Var):
            return _atom_poly(Sym(e.name))
        if isinstance(e, Bin):
            left, right = conv(e.left), conv(e.right)
            if e.op == "+":
                return left + right
            if e.op == "-":
                return left - right
            if e.op == "*":
                return left * right
            if e.op == "/":
                return make_div(left, right)
        raise CParseError(f"unsupported contract extent {expr_text!r}")

    return conv(parsed)


def check_access_bounds(
    analysis: KernelAnalysis, arrays: dict[str, dict[str, str]]
) -> list[Finding]:
    """Prove every recorded element access inside its declared extent."""
    findings: list[Finding] = []
    for acc in analysis.accesses:
        spec = arrays.get(acc.array)
        if spec is None:
            findings.append(
                Finding(
                    "contract",
                    analysis.name,
                    acc.line,
                    f"access to undeclared array {acc.array!r}",
                )
            )
            continue
        if acc.write and spec["mode"] == "r":
            findings.append(
                Finding(
                    "contract",
                    analysis.name,
                    acc.line,
                    f"write to read-only array {acc.array!r}",
                )
            )
        decomp = decompose_offset(acc.offset, spec["stride"])
        if decomp is None:
            findings.append(
                Finding(
                    "bounds",
                    analysis.name,
                    acc.line,
                    f"offset into {acc.array!r} does not decompose as "
                    f"row*{spec['stride']} + col",
                )
            )
            continue
        row, col = decomp
        rows = _extent_poly(spec["rows"])
        cols = _extent_poly(spec["cols"])
        kind = "write" if acc.write else "read"
        for part, expr, extent in (("row", row, rows), ("column", col, cols)):
            hi = eliminate(expr, acc.frames, upper=True)
            lo = eliminate(expr, acc.frames, upper=False)
            if hi is None or lo is None:
                findings.append(
                    Finding(
                        "bounds",
                        analysis.name,
                        acc.line,
                        f"{kind} {part} index of {acc.array!r} has no computable bound",
                    )
                )
                continue
            if not prove_ge0(lo, acc.facts):
                findings.append(
                    Finding(
                        "bounds",
                        analysis.name,
                        acc.line,
                        f"cannot prove {kind} {part} index of {acc.array!r} "
                        f">= 0 (lower bound {lo!r})",
                    )
                )
            if not prove_le(hi, extent - 1, acc.facts):
                findings.append(
                    Finding(
                        "bounds",
                        analysis.name,
                        acc.line,
                        f"cannot prove {kind} {part} index of {acc.array!r} "
                        f"< {expr_text_of(extent)} (upper bound {hi!r})",
                    )
                )
    return findings


def expr_text_of(p: Poly) -> str:
    return repr(p)


def call_regions(
    call: CallSite,
    callee_params: tuple[cparse.Param, ...],
    callee_arrays: dict[str, dict[str, str]],
    caller_arrays: dict[str, dict[str, str]],
    caller_name: str,
) -> tuple[list[tuple[str, Region]], list[Finding]]:
    """Instantiate the callee's declared regions with the actual arguments.

    Returns ``(regions, findings)`` where each region is expressed in the
    *caller's* row/column coordinates, ready to check against the
    caller's extents (and against sibling regions for aliasing).
    """
    findings: list[Finding] = []
    regions: list[tuple[str, Region]] = []
    if len(call.args) != len(callee_params):
        return [], [
            Finding(
                "contract",
                caller_name,
                call.line,
                f"call to {call.name!r} passes {len(call.args)} args, "
                f"expected {len(callee_params)}",
            )
        ]
    by_name = dict(zip([p.name for p in callee_params], call.args))
    for arr_name, spec in callee_arrays.items():
        base = by_name.get(arr_name)
        stride_actual = by_name.get(spec["stride"])
        if not isinstance(base, PtrVal):
            findings.append(
                Finding(
                    "contract",
                    caller_name,
                    call.line,
                    f"callee array {arr_name!r} bound to a non-pointer argument",
                )
            )
            continue
        caller_spec = caller_arrays.get(base.root)
        if caller_spec is None:
            findings.append(
                Finding(
                    "contract",
                    caller_name,
                    call.line,
                    f"pointer argument rooted at undeclared array {base.root!r}",
                )
            )
            continue
        if not (
            isinstance(stride_actual, Poly)
            and stride_actual == _atom_poly(Sym(caller_spec["stride"]))
        ):
            findings.append(
                Finding(
                    "contract",
                    caller_name,
                    call.line,
                    f"stride of callee array {arr_name!r} is not the caller's "
                    f"row stride — region unmappable",
                )
            )
            continue
        # instantiate callee extents with actual scalar arguments
        subst_env: dict[str, Poly] = {}
        usable = True
        for p in callee_params:
            if not p.pointer:
                actual = by_name[p.name]
                if isinstance(actual, Poly):
                    subst_env[p.name] = actual
                else:
                    usable = False
        rows = _instantiate(_extent_poly(spec["rows"]), subst_env) if usable else None
        cols = _instantiate(_extent_poly(spec["cols"]), subst_env) if usable else None
        if rows is None or cols is None:
            findings.append(
                Finding(
                    "contract",
                    caller_name,
                    call.line,
                    f"cannot instantiate callee extents for {arr_name!r}",
                )
            )
            continue
        decomp = decompose_offset(base.offset, caller_spec["stride"])
        if decomp is None:
            findings.append(
                Finding(
                    "bounds",
                    caller_name,
                    call.line,
                    f"pointer offset into {base.root!r} does not decompose "
                    f"against its stride",
                )
            )
            continue
        row0, col0 = decomp
        regions.append(
            (
                arr_name,
                Region(
                    base.root,
                    row0,
                    row0 + rows - 1,
                    col0,
                    col0 + cols - 1,
                    spec["mode"] != "r",
                ),
            )
        )
    return regions, findings


def _instantiate(p: Poly, env: dict[str, Poly]) -> Poly | None:
    """Simultaneously substitute callee parameter symbols with actuals.

    One-pass (not sequential) substitution: callee and caller parameter
    names overlap (``fw_blocked_f32`` passes ``nb = min(k0+blk, n) - k0``
    for the callee's ``n``), so a sequential rewrite could re-capture a
    just-introduced caller symbol. Contract extents contain plain
    symbols only; a symbol with no actual value means the extent cannot
    be instantiated.
    """
    out = P(0)
    for mono, coeff in p.terms:
        term = P(coeff)
        for a, e in mono:
            if isinstance(a, Sym):
                if a.name not in env:
                    return None
                base = env[a.name]
            else:
                return None  # contract extents are plain parameter products
            for _ in range(e):
                term = term * base
        out = out + term
    return out


def check_call_bounds(
    analysis: KernelAnalysis,
    caller_arrays: dict[str, dict[str, str]],
    templates_by_name: dict[str, object],
    parsed_by_name: dict[str, FuncDef],
) -> list[Finding]:
    """Prove every call site's instantiated regions inside caller extents."""
    findings: list[Finding] = []
    for call in analysis.calls:
        callee_tpl = templates_by_name.get(call.name)
        callee_fn = parsed_by_name.get(call.name)
        if callee_tpl is None or callee_fn is None:
            findings.append(
                Finding(
                    "contract",
                    analysis.name,
                    call.line,
                    f"call to unknown kernel {call.name!r}",
                )
            )
            continue
        regions, errs = call_regions(
            call,
            callee_fn.params,
            callee_tpl.arrays,  # type: ignore[attr-defined]
            caller_arrays,
            analysis.name,
        )
        findings.extend(errs)
        for arr_name, region in regions:
            caller_spec = caller_arrays[region.array]
            rows = _extent_poly(caller_spec["rows"])
            cols = _extent_poly(caller_spec["cols"])
            for part, lo_expr, hi_expr, extent in (
                ("row", region.row_lo, region.row_hi, rows),
                ("column", region.col_lo, region.col_hi, cols),
            ):
                lo = eliminate(lo_expr, call.frames, upper=False)
                hi = eliminate(hi_expr, call.frames, upper=True)
                if lo is None or hi is None:
                    findings.append(
                        Finding(
                            "bounds",
                            analysis.name,
                            call.line,
                            f"call region {part} bound for {call.name!r} "
                            f"arg {arr_name!r} is not computable",
                        )
                    )
                    continue
                if not prove_ge0(lo, call.facts):
                    findings.append(
                        Finding(
                            "bounds",
                            analysis.name,
                            call.line,
                            f"cannot prove {call.name!r} arg {arr_name!r} "
                            f"{part} region >= 0 (lower bound {lo!r})",
                        )
                    )
                if not prove_le(hi, extent - 1, call.facts):
                    findings.append(
                        Finding(
                            "bounds",
                            analysis.name,
                            call.line,
                            f"cannot prove {call.name!r} arg {arr_name!r} "
                            f"{part} region within caller extent "
                            f"(upper bound {hi!r} vs {extent!r})",
                        )
                    )
    return findings


def check_kernel_bounds(
    template,
    parsed: FuncDef,
    templates_by_name: dict[str, object],
    parsed_by_name: dict[str, FuncDef],
) -> tuple[KernelAnalysis, list[Finding]]:
    """Full bounds pass for one kernel: element accesses + call regions."""
    analysis = analyze_kernel(parsed, frozenset(templates_by_name))
    findings = list(analysis.findings)
    findings += check_access_bounds(analysis, template.arrays)
    findings += check_call_bounds(
        analysis, template.arrays, templates_by_name, parsed_by_name
    )
    return analysis, findings
