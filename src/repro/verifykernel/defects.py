"""Seeded-defect registry for cross-validating static vs dynamic checks.

Each defect is a minimal, realistic bug injected into one kernel (or into
the Python dispatch layer) via exact-match source substitution. The
verification pipeline applies each defect and asserts that it is caught
**both** by the static analyzer (bounds/alias/dispatch pass) and by the
matching dynamic check (ASan, TSan, or oracle divergence) — the same
static-vs-dynamic cross-validation PR 3 used for the happens-before
checker. A defect whose substitution no longer matches the shipped
kernel source fails loudly (`apply` raises), so the suite cannot rot
into silently testing nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFECTS", "SeededDefect", "defect_by_name"]


@dataclass(frozen=True)
class SeededDefect:
    """One injected bug and the checks expected to catch it."""

    name: str
    kind: str  # "c" (kernel template) | "python" (dispatch layer)
    kernel: str | None  # template name for C defects
    old: str
    new: str
    dynamic: str  # asan | tsan | divergence — the dynamic catcher
    static_check: str  # finding .check expected from the static pass
    description: str

    def apply(self, source: str) -> str:
        """Return ``source`` with the defect injected (exact, unique match)."""
        count = source.count(self.old)
        if count != 1:
            raise ValueError(
                f"defect {self.name!r}: expected exactly one match for "
                f"{self.old!r} in target source, found {count} — the kernel "
                f"source drifted; update the defect registry"
            )
        return source.replace(self.old, self.new, 1)

    def overrides(self, templates_by_name: dict) -> dict[str, str]:
        """C defects: kernel_source ``overrides`` mapping with the bug."""
        if self.kind != "c":
            raise ValueError(f"defect {self.name!r} is not a C-source defect")
        assert self.kernel is not None
        return {self.kernel: self.apply(templates_by_name[self.kernel].source)}


DEFECTS: tuple[SeededDefect, ...] = (
    SeededDefect(
        name="off_by_one_subscript",
        kind="c",
        kernel="mp_update_f32_seq",
        old="for (i64 j = 0; j < len; j++)",
        new="for (i64 j = 0; j <= len; j++)",
        dynamic="asan",
        static_check="bounds",
        description="inner column loop runs one element past the tile "
        "(classic <= for <), reading/writing one float past each row slice",
    ),
    SeededDefect(
        name="dropped_remainder_guard",
        kind="c",
        kernel="mp_update_f32",
        old="for (; k + 4 <= k1; k += 4)",
        new="for (; k < k1; k += 4)",
        dynamic="asan",
        static_check="bounds",
        description="register-blocked pivot loop loses its 4-wide guard, so "
        "a partial final group reads up to 3 pivots past the tile edge",
    ),
    SeededDefect(
        name="widened_panel",
        kind="c",
        kernel="mp_update_f32_omp",
        old="i64 hi = bj * (t + 1) / threads;",
        new="i64 hi = bj * (t + 1) / threads + 1;",
        dynamic="tsan",
        static_check="panels",
        description="each OpenMP column panel is widened by one column, so "
        "adjacent threads write the shared boundary column concurrently",
    ),
    SeededDefect(
        name="seq_fanout",
        kind="c",
        kernel="mp_update_f32_omp",
        old="""    if (seq) {
        mp_update_f32_seq(c, a, b, bi, bk, bj, cs, as, bs, tile);
        return;
    }
""",
        new="",
        dynamic="tsan",
        static_check="alias",
        description="the router's aliased-operand early return is dropped, "
        "fanning seq operands across panels: each thread reads rows of 'a' "
        "that sibling threads are concurrently rewriting through 'c'",
    ),
    SeededDefect(
        name="unsound_alias_routing",
        kind="python",
        kernel=None,
        old="seq = self._aliased(c, a, b)",
        new="seq = False",
        dynamic="divergence",
        static_check="dispatch",
        description="Python dispatch stops detecting overlapping operands "
        "and routes aliased updates to the disjoint-only fast kernel, "
        "which consumes stale 4-pivot groups (silent wrong distances)",
    ),
)


def defect_by_name(name: str) -> SeededDefect:
    for defect in DEFECTS:
        if defect.name == name:
            return defect
    raise KeyError(name)
