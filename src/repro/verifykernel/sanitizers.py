"""Run the kernel test matrix under sanitizer-instrumented builds.

Three modes, three transports:

- **asan** — the instrumented ``.so`` must see ASan's allocator from
  process start, so the matrix runs in a *subprocess* with
  ``LD_PRELOAD=libasan.so`` (numpy buffers get redzones via malloc
  interposition) and ``ASAN_OPTIONS=exitcode=99``: a fault exits 99
  before the oracle comparison is reached.
- **ubsan** — the UBSan runtime links into the ``.so`` itself and is
  happy to be dlopen'd late; the subprocess needs no preload.
  ``-fno-sanitize-recover=all`` turns the first report into an abort.
- **tsan** — TSan cannot be preloaded into an uninstrumented CPython
  (it must own every thread from the start), so the ``cc-omp`` flavor is
  exercised by a *standalone C driver*: kernel TU + ``main`` compiled as
  one ``-fsanitize=thread -fopenmp`` executable that replays disjoint
  and router-aliased OpenMP updates against the sequential kernel
  in-process (``TSAN_OPTIONS=exitcode=66``; driver exits 3 on oracle
  divergence). ``race_top`` suppressions drop libgomp fork/join noise:
  the uninstrumented join barrier carries no happens-before edge, so
  post-join main-thread reads (oracle memcmp, free) falsely "race"
  with the region's writes. Real panel races are worker-vs-worker and
  top out inside the callee kernels, which stay unsuppressed.

Seeded defects are injected as template-source overrides, so the same
harness that must stay silent on clean kernels is the one that must
fire on each defect — no separate code path to rot.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.core.backends.jit import (
    SANITIZER_FLAGS,
    _resolve_flags,
    cc_compiler,
    compile_cc_so,
    kernel_source,
    sanitizer_runtime,
)

__all__ = ["SanitizerRunResult", "sanitizer_available", "run_matrix"]

# libgomp is not TSan-instrumented, so the fork/join barrier carries no
# happens-before edge: every post-join main-thread access (the oracle
# memcmp in differ, the final free) "races" with the preceding parallel
# region's writes.  Real panel races are worker-vs-worker and top out in
# mp_update_f32 on both stacks, which none of these patterns match.
# Plain (unanchored) patterns are deliberate: TSan matches suppression
# templates against the raw interceptor symbol (__interceptor_free etc.),
# which anchored ^free$ style patterns silently fail to hit.
_SUPPRESSIONS = (
    "race_top:main\n"
    "race_top:differ\n"
    "race_top:free\n"
    "race_top:memcmp\n"
)

#: driver appended to the kernel TU for the TSan leg
_TSAN_DRIVER = r"""
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

static unsigned long long lcg_state = 0x243f6a8885a308d3ULL;
static float lcg(void)
{
    lcg_state = lcg_state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (float)((lcg_state >> 33) % 1000) / 100.0f + 1.0f;
}

static void fill(float *d, i64 n)
{
    for (i64 i = 0; i < n; i++)
        for (i64 j = 0; j < n; j++) {
            float v = lcg();
            d[i * n + j] = (v > 8.0f) ? (float)(1.0 / 0.0) : v;
        }
    for (i64 i = 0; i < n; i++) d[i * n + i] = 0.0f;
}

static int differ(const float *x, const float *y, i64 n)
{
    return memcmp(x, y, (size_t)(n * n) * sizeof(float)) != 0;
}

int main(void)
{
    /* bj/64 == 2: the smallest matrix where the panel fan-out really
     * runs concurrent threads (the kernel clamps threads to bj/64), so
     * panel races are reachable while the serial reference passes stay
     * affordable under TSan's ~10x slowdown; odd size keeps the
     * remainder paths hot */
    const i64 n = 129, tile = 48, threads = 4;
    size_t bytes = (size_t)(n * n) * sizeof(float);
    float *c0 = malloc(bytes), *a0 = malloc(bytes), *b0 = malloc(bytes);
    float *got = malloc(bytes), *want = malloc(bytes);
    if (!c0 || !a0 || !b0 || !got || !want) return 2;
    fill(c0, n); fill(a0, n); fill(b0, n);

    /* disjoint fan-out vs sequential reference (bit-exact candidates) */
    memcpy(got, c0, bytes);
    mp_update_f32_omp(got, a0, b0, n, n, n, n, n, n, tile, threads, 0);
    memcpy(want, c0, bytes);
    mp_update_f32_seq(want, a0, b0, n, n, n, n, n, n, tile);
    if (differ(got, want, n)) { fprintf(stderr, "driver: disjoint diverged\n"); return 3; }

    /* aliased operands through the router: must not fan out */
    memcpy(got, c0, bytes);
    mp_update_f32_omp(got, got, got, n, n, n, n, n, n, tile, threads, 1);
    memcpy(want, c0, bytes);
    mp_update_f32_seq(want, want, want, n, n, n, n, n, n, tile);
    if (differ(got, want, n)) { fprintf(stderr, "driver: aliased diverged\n"); return 3; }

    free(c0); free(a0); free(b0); free(got); free(want);
    return 0;
}
"""


@dataclass
class SanitizerRunResult:
    """Outcome of one instrumented matrix replay."""

    mode: str
    available: bool
    ran: bool = False
    faulted: bool = False  # the sanitizer fired
    diverged: bool = False  # oracle mismatch (matrix exit 1 / driver exit 3)
    returncode: int | None = None
    detail: str = ""
    degraded: tuple[str, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return self.ran and not self.faulted and not self.diverged

    @property
    def caught(self) -> bool:
        """Did the dynamic side flag anything at all?"""
        return self.faulted or self.diverged

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "available": self.available,
            "ran": self.ran,
            "clean": self.clean,
            "faulted": self.faulted,
            "diverged": self.diverged,
            "returncode": self.returncode,
            "detail": self.detail,
        }


def sanitizer_available(mode: str, compiler: str | None = None) -> bool:
    """True when the toolchain can build (and run) this sanitizer mode."""
    cc = compiler or cc_compiler()
    if cc is None:
        return False
    _flags, openmp, _mode, degraded = _resolve_flags(cc, sanitize=mode)
    if f"sanitize:{mode}" in degraded:
        return False
    if mode == "tsan" and not openmp:
        return False  # the TSan leg only exists to race the cc-omp flavor
    if mode in ("asan", "tsan") and sanitizer_runtime(mode, cc) is None:
        return False
    return True


def _tail(text: bytes, limit: int = 2000) -> str:
    return text.decode(errors="replace")[-limit:]


def _run_python_matrix(
    mode: str, so_path: Path, *, force_fast_alias: bool, fast: bool
) -> tuple[int, str]:
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    if mode == "asan":
        runtime = sanitizer_runtime("asan")
        assert runtime is not None
        env["LD_PRELOAD"] = str(runtime)
        env["ASAN_OPTIONS"] = "detect_leaks=0:abort_on_error=0:exitcode=99"
    elif mode == "ubsan":
        env["UBSAN_OPTIONS"] = "print_stacktrace=1"
    cmd = [sys.executable, "-m", "repro.verifykernel.matrixrun", "--so", str(so_path)]
    if force_fast_alias:
        cmd.append("--force-fast-alias")
    if fast:
        cmd.append("--fast")
    proc = subprocess.run(cmd, env=env, capture_output=True, timeout=600)
    return proc.returncode, _tail(proc.stderr)


def _run_tsan_driver(
    compiler: str, overrides: dict[str, str] | None, fast: bool
) -> tuple[int, str]:
    source = kernel_source(overrides) + _TSAN_DRIVER
    with tempfile.TemporaryDirectory(prefix="repro-tsan-") as tmp:
        tmpdir = Path(tmp)
        c_path = tmpdir / "driver.c"
        c_path.write_text(source)
        exe = tmpdir / "driver"
        supp = tmpdir / "tsan.supp"
        supp.write_text(_SUPPRESSIONS)
        build = subprocess.run(
            [compiler, str(c_path), "-O1", "-g", "-fopenmp", "-fsanitize=thread",
             "-lm", "-o", str(exe)],
            capture_output=True, timeout=300,
        )
        if build.returncode != 0:
            return 2, "driver build failed: " + _tail(build.stderr)
        env = dict(os.environ)
        env["TSAN_OPTIONS"] = (
            f"exitcode=66:suppressions={supp}:halt_on_error=0"
        )
        proc = subprocess.run([str(exe)], env=env, capture_output=True, timeout=600)
        return proc.returncode, _tail(proc.stderr)


def run_matrix(
    mode: str,
    *,
    overrides: dict[str, str] | None = None,
    force_fast_alias: bool = False,
    fast: bool = True,
    compiler: str | None = None,
) -> SanitizerRunResult:
    """Replay the kernel matrix under one sanitizer mode.

    ``overrides`` injects seeded-defect kernel sources; the result's
    ``caught``/``clean`` flags are what the verification report (and the
    cross-validation tests) consume.
    """
    if mode not in SANITIZER_FLAGS:
        raise ValueError(f"unknown sanitizer mode {mode!r}")
    cc = compiler or cc_compiler()
    result = SanitizerRunResult(mode=mode, available=sanitizer_available(mode, cc))
    if not result.available or cc is None:
        result.detail = f"toolchain lacks {mode}; leg skipped"
        return result
    if mode == "tsan":
        code, detail = _run_tsan_driver(cc, overrides, fast)
        result.ran = code != 2
        result.returncode = code
        result.detail = detail
        result.faulted = code == 66
        result.diverged = code == 3
        return result
    flags, openmp, san, degraded = _resolve_flags(cc, sanitize=mode)
    result.degraded = degraded
    source = kernel_source(overrides) if overrides else None
    so_path, _build = compile_cc_so(
        cc, flags, openmp, sanitize=san, degraded=degraded, source=source
    )
    code, detail = _run_python_matrix(
        mode, so_path, force_fast_alias=force_fast_alias, fast=fast
    )
    result.ran = True
    result.returncode = code
    result.detail = detail
    result.diverged = code == 1
    result.faulted = code not in (0, 1)
    return result
