"""Static + dynamic verification of the JIT-compiled C min-plus kernels.

Submodules: :mod:`cparse` (restricted-C parser for the kernel
templates), :mod:`bounds` (symbolic affine bounds prover and abstract
interpreter), :mod:`alias` (alias-class derivation, OpenMP panel
disjointness, Python dispatch cross-check), :mod:`defects` (seeded-bug
registry), :mod:`sanitizers` (ASan/UBSan/TSan harness),
:mod:`matrixrun` (the instrumented-process kernel test matrix), and
:mod:`report` (the ``repro verify-kernels`` pipeline).
"""

from repro.verifykernel.bounds import Finding
from repro.verifykernel.defects import DEFECTS, SeededDefect
from repro.verifykernel.report import (
    SCHEMA_VERSION,
    DefectResult,
    KernelVerification,
    static_findings,
    verify_kernels,
)
from repro.verifykernel.sanitizers import (
    SanitizerRunResult,
    run_matrix,
    sanitizer_available,
)

__all__ = [
    "DEFECTS",
    "SCHEMA_VERSION",
    "DefectResult",
    "Finding",
    "KernelVerification",
    "SanitizerRunResult",
    "SeededDefect",
    "run_matrix",
    "sanitizer_available",
    "static_findings",
    "verify_kernels",
]
