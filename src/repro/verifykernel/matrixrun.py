"""Replay the full kernel test matrix against one compiled ``.so``.

This is the *payload* of the sanitizer harness: a standalone process that
``dlopen``s a (normally instrumented) kernel shared object and drives
every C entry point through the shapes that historically hide bugs —
remainder tiles, strided row views, aliased operands, saturating int32,
the float16 round-through path, and the OpenMP panel fan-out — checking
each result against the numpy reference semantics from
:mod:`repro.core.backends.base`.

Run as::

    python -m repro.verifykernel.matrixrun --so PATH [--json-out F]
                                           [--force-fast-alias] [--fast]

Exit codes: ``0`` all cases match the oracle, ``1`` divergence, ``2``
usage/load error. Under ASan the process exits ``99`` at the first
instrumented fault (``ASAN_OPTIONS=exitcode=99``), before the oracle
comparison is reached.

``--force-fast-alias`` reproduces the ``unsound_alias_routing`` seeded
defect *behaviourally*: aliased operands are sent to the register-blocked
fast kernel (as a broken Python dispatch would) on an adversarial
chain-graph input whose pivot chain guarantees the stale 4-pivot groups
produce wrong distances — the dynamic catcher for that defect is oracle
divergence, not a sanitizer.
"""

from __future__ import annotations

import argparse
import ctypes
import json
import sys

import numpy as np

from repro.core.backends.base import (
    INT32_INF,
    float16_update,
    int32_rank1_update,
    numpy_fw_inplace,
    rank1_update,
)
from repro.core.backends.jit import CCBuildInfo, JITBackend, _CCKernels

__all__ = ["run_matrix_cases", "main"]

_TILE = 48  # smaller than default so remainder paths hit at small n


def seq_oracle_inplace(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, tile: int = _TILE
) -> np.ndarray:
    """Aliasing-faithful numpy replica of ``mp_update_f32_seq``.

    Same k-tile → j-tile → row → pivot order as the C kernel, applied
    in place, so it is exact for *every* ``(c, a, b)`` alias pattern —
    the reference the aliased matrix cases compare against. (For
    disjoint operands the order is irrelevant and :func:`rank1_update`
    is the cheaper oracle.)
    """
    bi, bj = c.shape
    bk = a.shape[1]
    for k0 in range(0, bk, tile):
        k1 = min(k0 + tile, bk)
        for j0 in range(0, bj, tile):
            j1 = min(j0 + tile, bj)
            for i in range(bi):
                row = c[i, j0:j1]
                for k in range(k0, k1):
                    aik = a[i, k]
                    if np.isinf(aik):
                        continue
                    np.minimum(row, aik + b[k, j0:j1], out=row)
    return c


def _load(so_path: str) -> _CCKernels:
    build = CCBuildInfo(compiler="external", version="", flags=(), openmp=False)
    return _CCKernels(ctypes.CDLL(so_path), build)


def _chain_graph(n: int) -> np.ndarray:
    """Path-graph distance seed: the worst case for stale pivot groups.

    Shortest paths need every intermediate vertex in order, so an aliased
    squaring step that pre-loads pivot groups before writing (the fast
    kernel's register blocking) returns distances that are provably too
    large — divergence is deterministic, not probabilistic.
    """
    d = np.full((n, n), np.inf, dtype=np.float32)
    np.fill_diagonal(d, 0.0)
    for i in range(n - 1):
        d[i, i + 1] = 1.0
    return d


def _dist_matrix(rng: np.random.Generator, n: int, inf_frac: float = 0.3) -> np.ndarray:
    d = rng.uniform(1.0, 10.0, size=(n, n)).astype(np.float32)
    d[rng.random((n, n)) < inf_frac] = np.inf
    np.fill_diagonal(d, 0.0)
    return d


def _strided(arr: np.ndarray) -> np.ndarray:
    """Re-home ``arr`` as a view with row stride 2×cols (unit inner stride)."""
    n, m = arr.shape
    buf = np.full((n, 2 * m), np.float32(np.nan), dtype=arr.dtype)
    buf[:, :m] = arr
    return buf[:, :m]


def _mp_args(kern, c, a, b, dtype, tile=_TILE):
    return (
        c.ctypes.data, a.ctypes.data, b.ctypes.data,
        c.shape[0], a.shape[1], c.shape[1],
        JITBackend._checked_operand(c, dtype),
        JITBackend._checked_operand(a, dtype),
        JITBackend._checked_operand(b, dtype),
        tile,
    )


def run_matrix_cases(
    kern: _CCKernels, *, fast: bool = False, force_fast_alias: bool = False
) -> list[dict]:
    """Run every case; returns one record per case (``ok`` + detail)."""
    rng = np.random.default_rng(20260808)
    cases: list[dict] = []

    def record(name: str, got: np.ndarray, want: np.ndarray, exact: bool = True) -> None:
        both = np.isfinite(got) & np.isfinite(want)
        if exact:
            ok = bool(np.array_equal(got, want))
        else:
            ok = bool(
                np.array_equal(np.isfinite(got), np.isfinite(want))
                and np.allclose(got[both], want[both], rtol=5e-4, atol=5e-4)
            )
        err = 0.0 if ok else float(np.max(np.abs(got[both] - want[both]), initial=0.0))
        mismatched = 0 if ok else int(np.sum((got != want) & ~(np.isnan(got) & np.isnan(want))))
        cases.append({"name": name, "ok": ok, "max_err": err, "mismatched": mismatched})

    sizes = [33] if fast else [33, 64, 97]

    # -- float32, disjoint operands: seq + fast kernels ------------------
    for n in sizes:
        c0 = _dist_matrix(rng, n)
        a0 = _dist_matrix(rng, n)
        b0 = _dist_matrix(rng, n)
        want = rank1_update(c0.copy(), a0, b0)
        for entry, label in ((kern.mp_update_seq, "seq"), (kern.mp_update, "fast")):
            c = c0.copy()
            entry(*_mp_args(kern, c, a0, b0, np.float32))
            record(f"f32/{label}/disjoint/n={n}", c, want)

    # -- float32, strided row views --------------------------------------
    n = sizes[-1]
    c0, a0, b0 = _dist_matrix(rng, n), _dist_matrix(rng, n), _dist_matrix(rng, n)
    want = rank1_update(c0.copy(), a0, b0)
    for entry, label in ((kern.mp_update_seq, "seq"), (kern.mp_update, "fast")):
        c, a, b = _strided(c0.copy()), _strided(a0), _strided(b0)
        entry(*_mp_args(kern, c, a, b, np.float32))
        record(f"f32/{label}/strided/n={n}", np.ascontiguousarray(c), want)

    # -- float32, aliased operands (zero diagonal -> rank-1 oracle exact)
    n = sizes[-1]
    base = _dist_matrix(rng, n)
    alias_specs = [
        ("c==a", lambda d: (d, d, _dist_matrix(rng, n))),
        ("c==b", lambda d: (d, _dist_matrix(rng, n), d)),
        ("c==a==b", lambda d: (d, d, d)),
    ]
    for label, build in alias_specs:
        if force_fast_alias:
            # behavioural replica of the unsound_alias_routing defect:
            # aliased operands on the register-blocked fast kernel; the
            # chain graph makes stale pivot groups diverge deterministically
            chain = _chain_graph(n)
            want = chain.copy()
            wa = want if label in ("c==a", "c==a==b") else chain.copy()
            wb = want if label in ("c==b", "c==a==b") else chain.copy()
            seq_oracle_inplace(want, wa, wb)
            got = chain.copy()
            ga = got if label in ("c==a", "c==a==b") else chain.copy()
            gb = got if label in ("c==b", "c==a==b") else chain.copy()
            kern.mp_update(*_mp_args(kern, got, ga, gb, np.float32))
            record(f"f32/forced-fast/{label}", got, want)
            continue
        d = base.copy()
        c, a, b = build(d)
        want_c = c.copy()
        want_a = want_c if a is c else a.copy()
        want_b = want_c if b is c else b.copy()
        want_c = seq_oracle_inplace(want_c, want_a, want_b)
        kern.mp_update_seq(*_mp_args(kern, c, a, b, np.float32))
        record(f"f32/seq/alias/{label}", c, want_c)

    # -- int32 semiring with saturation ----------------------------------
    n = sizes[0]
    big = int(INT32_INF) - 3
    ci = rng.integers(0, 50, size=(n, n), dtype=np.int32)
    ai = rng.integers(0, 50, size=(n, n), dtype=np.int32)
    bi_ = rng.integers(0, 50, size=(n, n), dtype=np.int32)
    ai[rng.random((n, n)) < 0.2] = INT32_INF
    bi_[rng.random((n, n)) < 0.2] = INT32_INF
    ai[0, :] = big  # near-sentinel values force the saturating add
    want_i = int32_rank1_update(ci.copy(), ai, bi_)
    ci2 = ci.copy()
    kern.mp_update_i32(*_mp_args(kern, ci2, ai, bi_, np.int32))
    record(f"i32/saturating/n={n}", ci2, want_i)

    # -- float16 round-through path --------------------------------------
    n = sizes[0]
    ch16 = _dist_matrix(rng, n).astype(np.float16)
    ah16 = _dist_matrix(rng, n).astype(np.float16)
    bh16 = _dist_matrix(rng, n).astype(np.float16)
    want_h = float16_update(ch16.copy(), ah16, bh16)

    def _cc_update(c32, a32, b32):
        kern.mp_update(*_mp_args(kern, c32, a32, b32, np.float32))
        return c32

    got_h = float16_update(ch16.copy(), ah16, bh16, update=_cc_update)
    record(f"f16/round-through/n={n}", got_h, want_h)

    # -- Floyd–Warshall: in-place + blocked ------------------------------
    n = sizes[-1]
    d0 = _dist_matrix(rng, n, inf_frac=0.5)
    d0[d0 < np.inf] = np.floor(d0[d0 < np.inf])  # integer weights: exact
    want_d = numpy_fw_inplace(d0.copy())
    d = d0.copy()
    kern.fw_inplace(d.ctypes.data, n, JITBackend._checked_operand(d, np.float32))
    record(f"fw/inplace/n={n}", d, want_d)
    d = d0.copy()
    kern.fw_blocked(
        d.ctypes.data, n, JITBackend._checked_operand(d, np.float32), 24, _TILE
    )
    record(f"fw/blocked/blk=24/n={n}", d, want_d)

    # -- OpenMP fan-out: disjoint panels + routed aliased operands -------
    if kern.openmp:
        threads_list = [2] if fast else [2, 4]
        # the fan-out caps panels at bj/64: the matrix must be wide
        # enough that the requested thread counts actually materialise
        n = 161 if fast else 257
        c0, a0, b0 = _dist_matrix(rng, n), _dist_matrix(rng, n), _dist_matrix(rng, n)
        want = rank1_update(c0.copy(), a0, b0)
        for threads in threads_list:
            c = c0.copy()
            kern.mp_update_omp(*_mp_args(kern, c, a0, b0, np.float32), threads, 0)
            record(f"f32/omp/disjoint/threads={threads}", c, want)
            # seq=1 exercises the C-side router: the entry point itself
            # must bounce aliased operands to the sequential twin instead
            # of fanning them across panels (TSan target for seq_fanout)
            d = c0.copy()
            want_d2 = c0.copy()
            seq_oracle_inplace(want_d2, want_d2, want_d2)
            kern.mp_update_omp(*_mp_args(kern, d, d, d, np.float32), threads, 1)
            record(f"f32/omp/alias-routed/threads={threads}", d, want_d2)

    return cases


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.verifykernel.matrixrun")
    parser.add_argument("--so", required=True, help="compiled kernel shared object")
    parser.add_argument("--json-out", help="write the case report to this path")
    parser.add_argument("--force-fast-alias", action="store_true")
    parser.add_argument("--fast", action="store_true", help="fewer sizes/threads")
    args = parser.parse_args(argv)
    try:
        kern = _load(args.so)
    except OSError as exc:
        print(f"matrixrun: cannot load {args.so}: {exc}", file=sys.stderr)
        return 2
    cases = run_matrix_cases(
        kern, fast=args.fast, force_fast_alias=args.force_fast_alias
    )
    failed = [c for c in cases if not c["ok"]]
    report = {
        "so": args.so,
        "openmp": kern.openmp,
        "cases": cases,
        "failed": len(failed),
    }
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2)
    for c in failed:
        print(f"matrixrun: DIVERGED {c['name']} (max_err={c['max_err']})", file=sys.stderr)
    print(f"matrixrun: {len(cases) - len(failed)}/{len(cases)} cases match", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
