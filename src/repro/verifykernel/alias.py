"""Alias-tolerance derivation and parallel-disjointness proofs.

Three analyses on top of the bounds interpreter:

1. **Pivot-group classification** — derive, from the kernel body itself,
   which ``(c, a, b)`` alias patterns each min-plus kernel tolerates.
   The discriminator is the *pivot group width*: how many distinct
   ``k`` offsets of ``A`` a kernel reads per innermost update of ``C``.
   Width 1 means pivots are consumed strictly one at a time, preserving
   the per-row sequential-``k`` semantics that makes the row-aliased
   stage-2 patterns (``C==A``, ``C==B`` on the zero-diagonal distance
   domain) exact. Width > 1 (the register-blocked kernel pre-loads a
   4-pivot group before writing) is only sound for disjoint operands —
   a pivot loaded before an aliased write would go stale. The derived
   class is cross-checked against the template's declared
   ``alias_class``; a mismatch is a finding on whichever side is wrong.

2. **OpenMP panel disjointness** — for every write region issued inside
   a ``parallel for`` frame over ``t``, prove no overlap with the same
   (or any sibling) region at iteration ``t + 1 + d`` for every
   ``d >= 0``. Adjacent panels ``[bj·t/threads, bj·(t+1)/threads)``
   share exactly their boundary, which the prover's same-denominator
   floor-division rule discharges; a widened panel breaks it.

3. **Router/self-alias soundness** — every call site whose instantiated
   regions may overlap (written region vs a read region of the same
   array) must target a callee whose derived class tolerates that
   pattern (``k-sequential`` / ``inplace-fw``, never ``disjoint``), and
   in the ``cc-omp`` router no path on which ``seq`` may be nonzero may
   reach a parallel frame or a ``disjoint``-class callee. Together with
   :func:`check_python_dispatch` — which statically checks that
   ``JITBackend.update`` derives ``seq`` from ``_aliased`` and routes
   truthy ``seq`` to the sequential twin — this closes the alias
   contract across the Python/C boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.verifykernel import cparse
from repro.verifykernel.bounds import (
    CallSite,
    Finding,
    KernelAnalysis,
    LoopSym,
    Poly,
    Region,
    Sym,
    _atom_poly,
    _substitute_atom,
    call_regions,
    decompose_offset,
    prove_ge0,
)

__all__ = [
    "check_call_aliasing",
    "check_parallel_disjointness",
    "check_python_dispatch",
    "derive_alias_class",
]

#: alias classes that tolerate overlapping operand regions
_TOLERANT = {"k-sequential", "inplace-fw"}


# ---------------------------------------------------------------------------
# 1. pivot-group classification
# ---------------------------------------------------------------------------
def derive_alias_class(analysis: KernelAnalysis, template) -> tuple[str, list[Finding]]:
    """Derive the alias tolerance of one kernel from its access pattern."""
    findings: list[Finding] = []
    arrays: dict[str, dict[str, str]] = template.arrays
    if not analysis.accesses and analysis.calls:
        # pure dispatcher: tolerance comes from per-call checks
        derived = "router" if template.name.endswith("_omp") else "inplace-fw"
        return derived, findings
    rw = [name for name, spec in arrays.items() if spec["mode"] != "r"]
    if len(arrays) == 1 and rw:
        derived = _classify_inplace(analysis, rw[0], arrays[rw[0]]["stride"])
    else:
        derived = _classify_minplus(analysis, arrays)
    if derived != template.alias_class:
        findings.append(
            Finding(
                "alias",
                analysis.name,
                analysis.fn.line,
                f"derived alias class {derived!r} contradicts declared "
                f"{template.alias_class!r}",
            )
        )
    return derived, findings


def _classify_minplus(
    analysis: KernelAnalysis, arrays: dict[str, dict[str, str]]
) -> str:
    """Width of the widest pivot group read from ``a`` per loop instance."""
    width = 1
    for name, spec in arrays.items():
        if spec["mode"] != "r":
            continue
        per_loop: dict[LoopSym, set[Poly]] = {}
        for acc in analysis.accesses:
            if acc.array != name or acc.write:
                continue
            decomp = decompose_offset(acc.offset, spec["stride"])
            if decomp is None:
                continue
            row, col = decomp
            for part in (row, col):
                for atom in part.atoms():
                    if isinstance(atom, LoopSym):
                        per_loop.setdefault(atom, set()).add(part)
        for exprs in per_loop.values():
            width = max(width, len(exprs))
    return "disjoint" if width > 1 else "k-sequential"


def _classify_inplace(analysis: KernelAnalysis, array: str, stride: str) -> str:
    """In-place FW shape: the outermost (pivot) loop indexes reads on both
    the row and the column axis while never indexing write rows."""
    pivot_rows = False
    pivot_cols = False
    write_rows_clean = True
    for acc in analysis.accesses:
        if acc.array != array or not acc.frames:
            continue
        pivot = acc.frames[0].atom
        decomp = decompose_offset(acc.offset, stride)
        if decomp is None:
            continue
        row, col = decomp
        if acc.write:
            if row.contains(pivot):
                write_rows_clean = False
        else:
            pivot_rows = pivot_rows or row.contains(pivot)
            pivot_cols = pivot_cols or col.contains(pivot)
    if pivot_rows and pivot_cols and write_rows_clean:
        return "inplace-fw"
    return "disjoint"


# ---------------------------------------------------------------------------
# 2. parallel panel disjointness
# ---------------------------------------------------------------------------
def _regions_of_call(
    call: CallSite, templates_by_name: dict, parsed_by_name: dict, caller_arrays, name
) -> list[Region]:
    tpl = templates_by_name.get(call.name)
    fn = parsed_by_name.get(call.name)
    if tpl is None or fn is None:
        return []
    regions, _ = call_regions(call, fn.params, tpl.arrays, caller_arrays, name)
    return [r for _, r in regions]


def check_parallel_disjointness(
    analysis: KernelAnalysis,
    template,
    templates_by_name: dict,
    parsed_by_name: dict,
) -> list[Finding]:
    """Prove pairwise-disjoint write sets across parallel loop iterations."""
    findings: list[Finding] = []
    # collect (parallel atom, written region, line) from calls and writes
    items: list[tuple[LoopSym, Region, int]] = []
    for call in analysis.calls:
        par = [f for f in call.frames if f.parallel]
        if not par:
            continue
        atom = par[-1].atom
        for region in _regions_of_call(
            call, templates_by_name, parsed_by_name, template.arrays, analysis.name
        ):
            if region.write:
                items.append((atom, region, call.line))
    for acc in analysis.accesses:
        par = [f for f in acc.frames if f.parallel]
        if not (par and acc.write):
            continue
        spec = template.arrays.get(acc.array)
        if spec is None:
            continue
        decomp = decompose_offset(acc.offset, spec["stride"])
        if decomp is None:
            continue
        row, col = decomp
        items.append(
            (par[-1].atom, Region(acc.array, row, row, col, col, True), acc.line)
        )
    for i, (atom, r1, line1) in enumerate(items):
        for atom2, r2, _line2 in items[i:]:
            if atom != atom2 or r1.array != r2.array:
                continue
            if not _disjoint_under_shift(r1, r2, atom):
                findings.append(
                    Finding(
                        "panels",
                        analysis.name,
                        line1,
                        f"cannot prove parallel iterations write disjoint "
                        f"regions of {r1.array!r} (panel overlap)",
                    )
                )
    return findings


def _disjoint_under_shift(r1: Region, r2: Region, atom: LoopSym) -> bool:
    """Regions at iterations ``t`` and ``t + 1 + d`` never overlap."""
    gap = _atom_poly(Sym(f"__shift_{atom.name}"))  # fresh nonnegative d
    shifted_t = _atom_poly(atom) + gap + 1

    def shift(p: Poly) -> Poly:
        return _substitute_atom(p, atom, shifted_t)

    # disjoint if row intervals or column intervals cannot meet, in
    # either order of the two iterations
    later_r2 = prove_ge0(shift(r2.row_lo) - r1.row_hi - 1) or prove_ge0(
        shift(r2.col_lo) - r1.col_hi - 1
    )
    later_r1 = prove_ge0(shift(r1.row_lo) - r2.row_hi - 1) or prove_ge0(
        shift(r1.col_lo) - r2.col_hi - 1
    )
    return later_r2 and later_r1


# ---------------------------------------------------------------------------
# 3. call-site alias soundness + router seq discipline
# ---------------------------------------------------------------------------
def _facts_pin_zero(facts: tuple[Poly, ...], name: str) -> bool:
    """Do the path facts force parameter ``name`` to zero?"""
    upper = _atom_poly(Sym(name)) * -1  # "-name >= 0" means name <= 0
    return any(f == upper for f in facts)


def check_call_aliasing(
    analysis: KernelAnalysis,
    template,
    templates_by_name: dict,
    parsed_by_name: dict,
    derived_classes: dict[str, str],
) -> list[Finding]:
    """Overlapping call regions must target alias-tolerant callees, and
    the ``seq`` flag must never fan out across a parallel frame."""
    findings: list[Finding] = []
    has_seq = any(
        p.name == "seq" and not p.pointer for p in analysis.fn.params
    )
    for call in analysis.calls:
        callee_class = derived_classes.get(call.name, "disjoint")
        regions = _regions_of_call(
            call, templates_by_name, parsed_by_name, template.arrays, analysis.name
        )
        written = [r for r in regions if r.write]
        read = [r for r in regions if not r.write]
        overlapping = False
        for w in written:
            for r in read:
                if w.array != r.array:
                    continue
                if w == r:
                    # the callee's own rw array seen through both modes
                    continue
                if not _rect_disjoint(w, r, call.facts):
                    overlapping = True
        if overlapping and callee_class not in _TOLERANT:
            findings.append(
                Finding(
                    "alias",
                    analysis.name,
                    call.line,
                    f"possibly-overlapping operand regions passed to "
                    f"{call.name!r}, which requires disjoint operands",
                )
            )
        if has_seq:
            in_parallel = any(f.parallel for f in call.frames)
            seq_zero = _facts_pin_zero(call.facts, "seq")
            if in_parallel and not seq_zero:
                findings.append(
                    Finding(
                        "alias",
                        analysis.name,
                        call.line,
                        "aliased (seq) operands may fan out across the "
                        "parallel region — cross-panel read/write race",
                    )
                )
            elif callee_class == "disjoint" and not seq_zero:
                findings.append(
                    Finding(
                        "alias",
                        analysis.name,
                        call.line,
                        f"path may reach disjoint-only kernel {call.name!r} "
                        f"with seq != 0 (unsound alias routing)",
                    )
                )
    return findings


def _rect_disjoint(a: Region, b: Region, facts: tuple[Poly, ...]) -> bool:
    """Same-iteration rectangles disjoint on the row or column axis."""
    return (
        prove_ge0(b.row_lo - a.row_hi - 1, facts)
        or prove_ge0(a.row_lo - b.row_hi - 1, facts)
        or prove_ge0(b.col_lo - a.col_hi - 1, facts)
        or prove_ge0(a.col_lo - b.col_hi - 1, facts)
    )


# ---------------------------------------------------------------------------
# 4. Python dispatch cross-check
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _DispatchCall:
    entry: str  # mp_update_seq | mp_update | mp_update_omp
    seq_state: str  # "true" | "false" | "unknown"
    line: int
    omp_seq_arg: int | None  # literal last arg of mp_update_omp, if constant


def check_python_dispatch(source: str, filename: str = "jit.py") -> list[Finding]:
    """Statically check ``JITBackend.update``'s alias routing.

    Requirements: ``seq`` is derived from a ``self._aliased(c, a, b)``
    call (not a constant), truthy ``seq`` reaches only the sequential-k
    entry point, and the fast/OpenMP entry points are reachable only
    with ``seq`` statically falsy (the OpenMP call must also pass a
    literal ``0`` for its C-side ``seq`` flag).
    """
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("dispatch", filename, exc.lineno or 0, f"unparsable: {exc}")]
    update_fn = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "JITBackend":
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "update":
                    update_fn = item
    if update_fn is None:
        return [Finding("dispatch", filename, 0, "JITBackend.update not found")]

    seq_from_aliased = False
    seq_constant: object = None
    for node in ast.walk(update_fn):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "seq" for t in node.targets
        ):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "_aliased"
            ):
                seq_from_aliased = True
            elif isinstance(value, ast.Constant):
                seq_constant = value.value
    if not seq_from_aliased:
        findings.append(
            Finding(
                "dispatch",
                filename,
                update_fn.lineno,
                "seq is not derived from _aliased(c, a, b)"
                + (f" (constant {seq_constant!r})" if seq_constant is not None else ""),
            )
        )

    calls: list[_DispatchCall] = []

    def walk(stmts: list[ast.stmt], seq_state: str) -> None:
        for stmt in stmts:
            for node in ast.walk(stmt) if not isinstance(stmt, ast.If) else []:
                _collect_call(node, seq_state, calls)
            if isinstance(stmt, ast.If):
                test = stmt.test
                if isinstance(test, ast.Name) and test.id == "seq":
                    walk(stmt.body, "true")
                    walk(stmt.orelse, "false")
                elif (
                    isinstance(test, ast.UnaryOp)
                    and isinstance(test.op, ast.Not)
                    and isinstance(test.operand, ast.Name)
                    and test.operand.id == "seq"
                ):
                    walk(stmt.body, "false")
                    walk(stmt.orelse, "true")
                else:
                    for node in ast.walk(test):
                        _collect_call(node, seq_state, calls)
                    walk(stmt.body, seq_state)
                    walk(stmt.orelse, seq_state)

    def _collect_call(node: ast.AST, seq_state: str, out: list[_DispatchCall]) -> None:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return
        if node.func.attr not in ("mp_update_seq", "mp_update", "mp_update_omp"):
            return
        omp_seq = None
        if node.func.attr == "mp_update_omp" and node.args:
            last = node.args[-1]
            if isinstance(last, ast.Constant) and isinstance(last.value, int):
                omp_seq = last.value
        out.append(_DispatchCall(node.func.attr, seq_state, node.lineno, omp_seq))

    walk(update_fn.body, "unknown")

    seq_calls = [c for c in calls if c.entry == "mp_update_seq"]
    fast_calls = [c for c in calls if c.entry in ("mp_update", "mp_update_omp")]
    if not any(c.seq_state == "true" for c in seq_calls):
        findings.append(
            Finding(
                "dispatch",
                filename,
                update_fn.lineno,
                "no path routes truthy seq to the sequential-k kernel",
            )
        )
    for c in fast_calls:
        if c.seq_state != "false":
            findings.append(
                Finding(
                    "dispatch",
                    filename,
                    c.line,
                    f"{c.entry} reachable without a statically-false seq guard",
                )
            )
        if c.entry == "mp_update_omp" and c.omp_seq_arg not in (0,):
            findings.append(
                Finding(
                    "dispatch",
                    filename,
                    c.line,
                    "mp_update_omp must pass a literal 0 seq flag on the "
                    "disjoint path",
                )
            )
    for c in seq_calls:
        if c.seq_state == "false":
            findings.append(
                Finding(
                    "dispatch",
                    filename,
                    c.line,
                    "sequential-k kernel called where seq is statically false "
                    "(swapped branches?)",
                )
            )
    return findings
