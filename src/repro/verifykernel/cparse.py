"""Parser for the C subset the JIT kernel templates are written in.

The kernels in :mod:`repro.core.backends.jit` deliberately use a small,
regular C dialect — scalar/pointer declarations, ``for``/``if``/ternary
control flow, array subscripts, ``#pragma`` hints and one level of
``#if defined(_OPENMP)`` conditional compilation. This module tokenizes
and parses exactly that subset into a small AST that
:mod:`repro.verifykernel.bounds` interprets symbolically. Anything
outside the subset is a hard :class:`CParseError` — a kernel the
verifier cannot read is a kernel the verifier cannot prove, so parse
failures surface as findings rather than silent skips.

The grammar is C-faithful where it matters for index math: operator
precedence (ternary < logical < comparison < additive < multiplicative <
unary < postfix), left-associativity of ``*``/``/``, and declaration
initialisers referring to earlier declarators in the same statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "Assign",
    "Bin",
    "Block",
    "Call",
    "CParseError",
    "Cast",
    "Continue",
    "Decl",
    "For",
    "FuncDef",
    "If",
    "Index",
    "Num",
    "Param",
    "Pragma",
    "Return",
    "Ternary",
    "Unary",
    "Var",
    "parse_kernel",
    "preprocess",
]


class CParseError(ValueError):
    """The source stepped outside the supported C subset."""


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Var:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Cast:
    ctype: str
    expr: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str
    expr: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Bin:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Ternary:
    cond: "Expr"
    then: "Expr"
    other: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Index:
    base: "Expr"
    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple["Expr", ...]
    line: int = 0


Expr = Num | Var | Cast | Unary | Bin | Ternary | Index | Call


@dataclass(frozen=True)
class Declarator:
    name: str
    pointer: bool
    init: Expr | None


@dataclass(frozen=True)
class Decl:
    ctype: str
    const: bool
    items: tuple[Declarator, ...]
    line: int = 0


@dataclass(frozen=True)
class Assign:
    target: Expr  # Var or Index
    op: str  # "=", "+=", "-=", "++", "--"
    value: Expr | None
    line: int = 0


@dataclass(frozen=True)
class If:
    cond: Expr
    then: "Block"
    other: "Block | None"
    line: int = 0


@dataclass(frozen=True)
class For:
    init: "Decl | Assign | None"
    cond: Expr | None
    step: Assign | None
    body: "Block"
    pragma: str | None = None
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: Expr | None
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class Pragma:
    text: str
    line: int = 0


@dataclass(frozen=True)
class Block:
    stmts: tuple["Stmt", ...]


Stmt = Decl | Assign | If | For | Return | Continue | Block | Call


@dataclass(frozen=True)
class Param:
    ctype: str
    name: str
    pointer: bool
    const: bool


@dataclass(frozen=True)
class FuncDef:
    name: str
    params: tuple[Param, ...]
    body: Block
    line: int = 0


# ---------------------------------------------------------------------------
# Preprocessing: strip comments, resolve #if defined(...) / #else / #endif
# ---------------------------------------------------------------------------
_IF_RE = re.compile(r"#\s*if\s+defined\s*\(\s*(\w+)\s*\)\s*$")


def preprocess(source: str, defines: frozenset[str] = frozenset()) -> str:
    """Resolve one-level ``#if defined(X)`` blocks and drop comments.

    Line structure is preserved (dropped lines become empty) so AST line
    numbers match the template source.
    """
    source = re.sub(
        r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)), source, flags=re.S
    )
    source = re.sub(r"//[^\n]*", "", source)
    out: list[str] = []
    # stack of (parent_active, this_branch_taken, seen_else)
    stack: list[list[bool]] = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#") and not stripped.startswith("#pragma"):
            m = _IF_RE.match(stripped)
            active = all(s[1] for s in stack)
            if m:
                stack.append([active, m.group(1) in defines, False])
            elif re.match(r"#\s*else\b", stripped):
                if not stack or stack[-1][2]:
                    raise CParseError(f"unmatched #else: {stripped!r}")
                stack[-1][1] = not stack[-1][1]
                stack[-1][2] = True
            elif re.match(r"#\s*endif\b", stripped):
                if not stack:
                    raise CParseError(f"unmatched #endif: {stripped!r}")
                stack.pop()
            else:
                raise CParseError(f"unsupported preprocessor line: {stripped!r}")
            out.append("")
            continue
        if all(s[0] and s[1] for s in stack):
            out.append(line)
        else:
            out.append("")
    if stack:
        raise CParseError("unterminated #if block")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<pragma>\#pragma[^\n]*)
  | (?P<num>0[xX][0-9a-fA-F]+|\d+(\.\d+)?([fF])?)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|!=|&&|\|\||\+\+|--|\+=|-=|\*=|/=|[-+*/%<>=!?:;,.(){}\[\]&])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.X,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "pragma" | "num" | "name" | "op"
    text: str
    line: int


def _tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    for m in _TOKEN_RE.finditer(source):
        kind = m.lastgroup or ""
        text = m.group(0)
        if kind == "ws":
            line += text.count("\n")
            continue
        if kind == "bad":
            raise CParseError(f"line {line}: unexpected character {text!r}")
        tokens.append(Token(kind if kind != "pragma" else "pragma", text, line))
    return tokens


_TYPE_NAMES = {"i64", "int32_t", "int", "float", "double", "long", "void"}
#: scalar C types whose values participate in index arithmetic
INT_TYPES = {"i64", "int32_t", "int", "long"}


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------
    def peek(self, ahead: int = 0) -> Token | None:
        i = self.pos + ahead
        return self.tokens[i] if i < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of source")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise CParseError(f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    def at(self, text: str, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok is not None and tok.text == text

    def _at_type(self) -> bool:
        tok = self.peek()
        if tok is None or tok.kind != "name":
            return False
        if tok.text == "const":
            nxt = self.peek(1)
            return nxt is not None and nxt.text in _TYPE_NAMES
        return tok.text in _TYPE_NAMES

    # -- function definition ----------------------------------------------
    def parse_function(self) -> FuncDef:
        line = self.next().line  # return type (void)
        name = self.next().text
        self.expect("(")
        params: list[Param] = []
        if not self.at(")"):
            while True:
                const = False
                if self.at("const"):
                    const = True
                    self.next()
                ctype = self.next().text
                if ctype not in _TYPE_NAMES:
                    raise CParseError(f"unsupported parameter type {ctype!r}")
                pointer = False
                if self.at("*"):
                    pointer = True
                    self.next()
                pname = self.next().text
                params.append(Param(ctype, pname, pointer, const))
                if self.at(","):
                    self.next()
                    continue
                break
        self.expect(")")
        body = self.parse_block()
        return FuncDef(name, tuple(params), body, line)

    # -- statements --------------------------------------------------------
    def parse_block(self) -> Block:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return Block(tuple(stmts))

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of source in statement")
        if tok.kind == "pragma":
            self.next()
            nxt = self.peek()
            if nxt is not None and nxt.text == "for":
                loop = self.parse_stmt()
                assert isinstance(loop, For)
                return For(
                    loop.init, loop.cond, loop.step, loop.body, tok.text, loop.line
                )
            # pragma not attached to a loop (e.g. before a block): keep as
            # a marker only when followed by '{'
            raise CParseError(
                f"line {tok.line}: #pragma must precede a for loop in this subset"
            )
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "return":
            self.next()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return Return(value, tok.line)
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return Continue(tok.line)
        if self._at_type():
            decl = self.parse_decl()
            self.expect(";")
            return decl
        stmt = self.parse_simple()
        self.expect(";")
        return stmt

    def parse_decl(self) -> Decl:
        tok = self.peek()
        assert tok is not None
        const = False
        if self.at("const"):
            const = True
            self.next()
        ctype = self.next().text
        items: list[Declarator] = []
        while True:
            pointer = False
            if self.at("*"):
                pointer = True
                self.next()
            name = self.next().text
            init = None
            if self.at("="):
                self.next()
                init = self.parse_expr()
            items.append(Declarator(name, pointer, init))
            if self.at(","):
                self.next()
                continue
            break
        return Decl(ctype, const, tuple(items), tok.line)

    def parse_simple(self) -> Assign | Call:
        """Assignment, compound assignment, ``x++`` or a call statement."""
        start = self.pos
        expr = self.parse_unary_postfix()
        tok = self.peek()
        if tok is not None and tok.text in ("=", "+=", "-=", "*=", "/="):
            if not isinstance(expr, (Var, Index)):
                raise CParseError(f"line {tok.line}: unsupported assignment target")
            self.next()
            value = self.parse_expr()
            return Assign(expr, tok.text, value, tok.line)
        if tok is not None and tok.text in ("++", "--"):
            if not isinstance(expr, Var):
                raise CParseError(f"line {tok.line}: unsupported {tok.text} target")
            self.next()
            return Assign(expr, tok.text, None, tok.line)
        if isinstance(expr, Call):
            return expr
        self.pos = start
        raise CParseError(
            f"line {tok.line if tok else 0}: expression statement with no effect"
        )

    def parse_if(self) -> If:
        tok = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self._stmt_as_block()
        other = None
        if self.at("else"):
            self.next()
            other = self._stmt_as_block()
        return If(cond, then, other, tok.line)

    def parse_for(self) -> For:
        tok = self.expect("for")
        self.expect("(")
        init: Decl | Assign | None = None
        if not self.at(";"):
            init = self.parse_decl() if self._at_type() else self._assign_only()
        self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        step = None if self.at(")") else self._assign_only()
        self.expect(")")
        body = self._stmt_as_block()
        return For(init, cond, step, body, None, tok.line)

    def _assign_only(self) -> Assign:
        stmt = self.parse_simple()
        if not isinstance(stmt, Assign):
            raise CParseError("expected an assignment")
        return stmt

    def _stmt_as_block(self) -> Block:
        stmt = self.parse_stmt()
        return stmt if isinstance(stmt, Block) else Block((stmt,))

    # -- expressions (precedence climbing) ---------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_logic_or()
        if self.at("?"):
            line = self.next().line
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_ternary()
            return Ternary(cond, then, other, line)
        return cond

    def _binop_level(self, ops: tuple[str, ...], sub) -> Expr:
        left = sub()
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return left
            self.next()
            left = Bin(tok.text, left, sub(), tok.line)

    def parse_logic_or(self) -> Expr:
        return self._binop_level(("||",), self.parse_logic_and)

    def parse_logic_and(self) -> Expr:
        return self._binop_level(("&&",), self.parse_equality)

    def parse_equality(self) -> Expr:
        return self._binop_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> Expr:
        return self._binop_level(("<", ">", "<=", ">="), self.parse_additive)

    def parse_additive(self) -> Expr:
        return self._binop_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> Expr:
        return self._binop_level(("*", "/", "%"), self.parse_unary_postfix)

    def parse_unary_postfix(self) -> Expr:
        tok = self.peek()
        if tok is None:
            raise CParseError("unexpected end of source in expression")
        if tok.text in ("!", "-"):
            self.next()
            return Unary(tok.text, self.parse_unary_postfix(), tok.line)
        if tok.text == "(":
            nxt = self.peek(1)
            after = self.peek(2)
            if (
                nxt is not None
                and nxt.text in _TYPE_NAMES
                and after is not None
                and after.text == ")"
            ):
                self.next()
                ctype = self.next().text
                self.expect(")")
                return Cast(ctype, self.parse_unary_postfix(), tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.at("["):
                line = self.next().line
                index = self.parse_expr()
                self.expect("]")
                expr = Index(expr, index, line)
            elif self.at("(") and isinstance(expr, Var):
                line = self.next().line
                args: list[Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.at(","):
                            self.next()
                            continue
                        break
                self.expect(")")
                expr = Call(expr.name, tuple(args), line)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "num":
            text = tok.text.rstrip("fF")
            if "." in text:
                raise CParseError(
                    f"line {tok.line}: float literals not allowed in index math"
                )
            return Num(int(text, 0), tok.line)
        if tok.kind == "name":
            return Var(tok.text, tok.line)
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise CParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse_kernel(source: str, defines: frozenset[str] = frozenset({"_OPENMP"})) -> FuncDef:
    """Parse one kernel template (a single function definition)."""
    tokens = _tokenize(preprocess(source, defines))
    parser = _Parser(tokens)
    fn = parser.parse_function()
    if parser.peek() is not None:
        tok = parser.peek()
        assert tok is not None
        raise CParseError(f"line {tok.line}: trailing tokens after function body")
    return fn
