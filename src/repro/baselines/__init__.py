"""CPU baseline implementations the paper compares against.

* :func:`~repro.baselines.bgl_plus.bgl_plus_apsp` — **BGL-plus** (Section
  V-C): Dijkstra per source from the Boost Graph Library, parallelised over
  sources with OpenMP. Our stand-in runs the real binary-heap Dijkstra and
  converts its operation counts through the Xeon machine model.
* :func:`~repro.baselines.super_fw.super_fw_apsp` — **SuperFW** [31]: a
  highly optimised multicore blocked Floyd–Warshall.
* :func:`~repro.baselines.galois.galois_apsp` — the **Galois** library's
  APSP (delta-stepping per source).

Each returns a :class:`~repro.baselines.common.BaselineResult` with
simulated seconds on the same time base as the GPU model, and (optionally)
the exact distance matrix for correctness tests.
"""

from repro.baselines.bgl_plus import bgl_plus_apsp
from repro.baselines.common import BaselineResult
from repro.baselines.galois import galois_apsp
from repro.baselines.super_fw import super_fw_apsp

__all__ = ["BaselineResult", "bgl_plus_apsp", "galois_apsp", "super_fw_apsp"]
