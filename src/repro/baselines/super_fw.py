"""SuperFW: a state-of-the-art multicore blocked Floyd–Warshall [31].

The paper compares against SuperFW's *reported* execution times from a
dual-socket 32-core Haswell (Section V-C, Fig 4) — it could not run the
code itself. Our stand-in executes the real blocked FW for exact distances
when asked, and models the reported times as a cache-blocked, vectorised
``2n³`` sweep at the Haswell preset's effective per-core rate.
"""

from __future__ import annotations

from repro.baselines.common import BaselineResult
from repro.core.blocked_fw import blocked_floyd_warshall, fw_ops
from repro.core.minplus import DIST_DTYPE
from repro.cpumodel.model import HASWELL_32, CpuSpec

__all__ = ["super_fw_apsp"]


def super_fw_apsp(
    graph,
    cpu: CpuSpec = HASWELL_32,
    *,
    exact: bool = False,
    block_size: int = 64,
) -> BaselineResult:
    """APSP time of SuperFW (and distances when ``exact``)."""
    n = graph.num_vertices
    distances = None
    if exact:
        distances = graph.to_dense(dtype=DIST_DTYPE)
        blocked_floyd_warshall(distances, block_size)
    seconds = fw_ops(n) / (cpu.fw_rate * cpu.cores * cpu.parallel_efficiency)
    return BaselineResult(
        name="super-fw",
        simulated_seconds=seconds,
        sampled_sources=0,
        distances=distances,
        stats={"ops": fw_ops(n)},
    )
