"""BGL-plus: the paper's multicore CPU baseline (Section V-C).

One Boost-style binary-heap Dijkstra per source, parallelised across
sources with OpenMP on the Xeon host. The stand-in executes the real
Dijkstra (:func:`repro.sssp.dijkstra`) on a sample of sources, converts
each run's heap + relaxation counts into per-source seconds through the
:class:`~repro.cpumodel.CpuSpec`, and extrapolates the source loop — the
same sampling idea the paper applies to Johnson's algorithm (Section
IV-B.2), justified by the low per-source variance.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineResult, sample_sources
from repro.cpumodel.model import XEON_E5_2680, CpuSpec
from repro.sssp.dijkstra import dijkstra

__all__ = ["bgl_plus_apsp", "DEFAULT_SAMPLES"]

#: sources sampled for time extrapolation
DEFAULT_SAMPLES = 8


def bgl_plus_apsp(
    graph,
    cpu: CpuSpec = XEON_E5_2680,
    *,
    num_samples: int = DEFAULT_SAMPLES,
    exact: bool = False,
    seed: int = 0,
) -> BaselineResult:
    """APSP time of the BGL-plus baseline (and distances when ``exact``).

    ``exact=True`` runs every source (quadratic output — small graphs only)
    and also returns the distance matrix for correctness checks.
    """
    n = graph.num_vertices
    rate = cpu.dijkstra_ops_rate(n, graph.num_edges)

    if exact:
        sources = np.arange(n)
    else:
        sources = sample_sources(n, num_samples, seed=seed)

    distances = np.empty((n, n)) if exact else None
    total_ops = 0
    for row, s in enumerate(sources):
        dist, stats = dijkstra(graph, int(s))
        if distances is not None:
            distances[row] = dist
        total_ops += stats.heap_ops + stats.relaxations

    per_source = (total_ops / max(1, len(sources))) / rate
    seconds = cpu.source_parallel_time(per_source, n)
    return BaselineResult(
        name="bgl-plus",
        simulated_seconds=seconds,
        sampled_sources=len(sources),
        distances=distances,
        stats={
            "ops_per_source": total_ops / max(1, len(sources)),
            "rate": rate,
        },
    )
