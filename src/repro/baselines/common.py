"""Shared result type and source-sampling helper for CPU baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BaselineResult", "sample_sources"]


@dataclass
class BaselineResult:
    """Outcome of one CPU baseline run.

    ``simulated_seconds`` is on the same simulated time base as the GPU
    results. ``distances`` is filled only when the caller asks for exact
    numerics (small graphs / correctness tests); the baselines otherwise
    extrapolate from sampled sources exactly the way the paper's Johnson
    cost model samples batches.
    """

    name: str
    simulated_seconds: float
    sampled_sources: int
    distances: np.ndarray | None = None
    stats: dict = field(default_factory=dict)


def sample_sources(n: int, count: int, *, seed: int = 0) -> np.ndarray:
    """Uniformly sampled distinct source vertices."""
    count = min(count, n)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(n, size=count, replace=False))
