"""Galois-style APSP: parallel delta-stepping per source (Section V-C).

The Galois graph library solves APSP by running its delta-stepping SSSP for
each source; the paper uses the times reported on the 32-core Haswell
machine (Fig 4). The stand-in runs the real delta-stepping implementation
on sampled sources and converts relaxation/bucket counts through the CPU
model, whose ``delta_rate`` is calibrated to the reported numbers (which
imply a low effective per-thread rate — the paper measures Galois
79.9–152.6× slower than its GPU runs).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BaselineResult, sample_sources
from repro.cpumodel.model import HASWELL_32, CpuSpec
from repro.sssp.delta_stepping import delta_stepping

__all__ = ["galois_apsp", "DEFAULT_SAMPLES"]

DEFAULT_SAMPLES = 8

#: modelled per-bucket scheduling overhead of the runtime, seconds
BUCKET_OVERHEAD = 1e-5


def galois_apsp(
    graph,
    cpu: CpuSpec = HASWELL_32,
    *,
    num_samples: int = DEFAULT_SAMPLES,
    exact: bool = False,
    delta: float | None = None,
    seed: int = 0,
) -> BaselineResult:
    """APSP time of the Galois baseline (and distances when ``exact``)."""
    n = graph.num_vertices
    sources = np.arange(n) if exact else sample_sources(n, num_samples, seed=seed)
    distances = np.empty((n, n)) if exact else None

    total_relax = 0
    total_buckets = 0
    for row, s in enumerate(sources):
        dist, stats = delta_stepping(graph, int(s), delta=delta)
        if distances is not None:
            distances[row] = dist
        total_relax += stats.relaxations
        total_buckets += stats.buckets_processed + stats.inner_iterations

    k = max(1, len(sources))
    per_source = (total_relax / k) / cpu.delta_rate + (total_buckets / k) * BUCKET_OVERHEAD
    seconds = cpu.source_parallel_time(per_source, n)
    return BaselineResult(
        name="galois",
        simulated_seconds=seconds,
        sampled_sources=len(sources),
        distances=distances,
        stats={
            "relaxations_per_source": total_relax / k,
            "buckets_per_source": total_buckets / k,
        },
    )
