"""PCIe transfer time model.

``duration = latency + nbytes / effective_throughput`` with pageable host
memory derated by ``spec.pageable_factor``. The fixed per-call latency is the
term the boundary algorithm's transfer batching attacks: `k²` copies of a few
hundred KB each are latency-bound, one copy of the accumulated buffer is
bandwidth-bound (paper Section III-C, Fig 8).

The throughputs themselves are the paper's ``nvprof``-measured values
(11.75 GB/s V100, 7.23 GB/s K80, Section V-E).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import DeviceSpec

__all__ = ["aborted_copy_duration", "copy_duration", "copy_duration_2d"]


def copy_duration(spec: "DeviceSpec", nbytes: int, *, pinned: bool = True) -> float:
    """Modelled duration of one contiguous host↔device copy."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    throughput = spec.transfer_throughput
    if not pinned:
        throughput *= spec.pageable_factor
    return spec.transfer_latency + nbytes / throughput


def aborted_copy_duration(
    spec: "DeviceSpec", nbytes: int, fraction: float, *, pinned: bool = True
) -> float:
    """Modelled duration of a copy that failed partway through.

    An injected :class:`~repro.gpu.errors.TransferError` carries the
    fraction of the payload delivered before the fault; the aborted
    attempt still occupies its copy engine for the setup latency plus the
    bandwidth time of the delivered prefix. Charged with ``nbytes=0`` on
    the timeline so byte statistics count delivered data only.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    fraction = min(1.0, max(0.0, fraction))
    throughput = spec.transfer_throughput
    if not pinned:
        throughput *= spec.pageable_factor
    return spec.transfer_latency + fraction * nbytes / throughput


def copy_duration_2d(
    spec: "DeviceSpec", rows: int, row_bytes: int, *, pinned: bool = True
) -> float:
    """Modelled duration of a strided (``cudaMemcpy2D``-style) copy.

    A block of the host distance matrix is not contiguous: each of its
    ``rows`` rows is a separate DMA segment paying
    ``spec.row_transfer_overhead``. For short rows this is latency-bound —
    the "large number of small data transfers" the boundary algorithm's
    batching optimisation eliminates (Section III-C: 69.96–83.90% of
    execution time before batching).
    """
    if rows < 0 or row_bytes < 0:
        raise ValueError("rows and row_bytes must be non-negative")
    throughput = spec.transfer_throughput
    if not pinned:
        throughput *= spec.pageable_factor
    return spec.transfer_latency + rows * (
        spec.row_transfer_overhead + row_bytes / throughput
    )
