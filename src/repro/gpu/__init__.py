"""Simulated GPU substrate.

The paper runs on NVIDIA V100/K80 devices; this environment has no GPU, so
``repro.gpu`` provides a discrete-event *model* of one. The model captures
exactly the mechanisms the paper's out-of-core design interacts with:

* a **device memory allocator** with a hard capacity
  (:class:`~repro.gpu.memory.DeviceMemory`) — block sizes, batch sizes and
  component counts are all derived from it, as in the paper;
* **copy engines** with throughput + per-call latency
  (:mod:`~repro.gpu.transfer`) — one H2D engine and one D2H engine, so
  transfers in one direction serialise but overlap with compute, as on real
  hardware; pinned host memory gets full throughput;
* **CUDA-like streams and events** (:mod:`~repro.gpu.stream`) scheduled on a
  per-engine :class:`~repro.gpu.timeline.Timeline`, so double-buffered
  overlap genuinely shortens the simulated makespan;
* **kernel cost models** (:mod:`~repro.gpu.kernels`) — roofline-style costs
  with launch overheads, an occupancy model for batched MSSP (active thread
  blocks vs. the device limit), and dynamic-parallelism child-kernel
  overheads.

The algorithm layer (:mod:`repro.core`, :mod:`repro.sssp`) performs the real
numeric work in numpy on the device arrays and charges these modelled costs
to a stream, so algorithm correctness and the performance study share one
code path. Simulated clocks are deterministic.
"""

from repro.gpu.device import K80, V100, Device, DeviceSpec, TEST_DEVICE
from repro.gpu.errors import DeviceError, OutOfMemoryError
from repro.gpu.memory import DeviceArray, DeviceMemory, HostBuffer
from repro.gpu.stream import Event, Stream
from repro.gpu.timeline import Timeline, TimelineOp

__all__ = [
    "Device",
    "DeviceArray",
    "DeviceError",
    "DeviceMemory",
    "DeviceSpec",
    "Event",
    "HostBuffer",
    "K80",
    "OutOfMemoryError",
    "Stream",
    "TEST_DEVICE",
    "Timeline",
    "TimelineOp",
    "V100",
]
