"""Device specifications and the :class:`Device` facade.

:class:`DeviceSpec` collects the constants the performance model needs. The
two presets mirror the paper's Table II hardware, with effective rates
back-calculated from the paper's measurements:

* PCIe throughput — measured by the authors with ``nvprof``: 11.75 GB/s
  (V100) and 7.23 GB/s (K80), Section V-E;
* ``minplus_rate`` — effective min-plus ops/s of the tiled FW kernels,
  calibrated from Table VI (blocked FW on n = 80,000 takes ≈170 s, i.e.
  :math:`n^3 / 170 \\approx 3\\times10^{12}` ops/s on V100);
* ``relax_rate`` — effective edge relaxations/s of the Near-Far MSSP kernel,
  calibrated from Table VI's Johnson column;
* ``max_active_blocks`` — the occupancy ceiling that motivates the dynamic
  parallelism optimisation (Section III-B).

:meth:`DeviceSpec.scaled` produces a *scaled-down* device for running the
paper's experiments at reduced graph sizes: memory scales with ``s²`` (the
distance matrix is ``n²`` bytes) and compute rates with ``s``, so that the
compute/transfer balance at scaled ``n' = s·n`` equals the paper's balance
at full ``n``; per-copy latency stays at its physical value (see the method
docstring for the rationale per constant). See also DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.gpu.errors import TransientDeviceError
from repro.gpu.memory import DeviceMemory
from repro.gpu.stream import Stream
from repro.gpu.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy
    from repro.sanitize.hazards import HazardReport
    from repro.sanitize.sanitizer import ScheduleSanitizer

_T = TypeVar("_T")

__all__ = ["Device", "DeviceSpec", "V100", "K80", "TEST_DEVICE"]


@dataclass(frozen=True)
class DeviceSpec:
    """Constants describing one (simulated) GPU."""

    name: str
    memory_bytes: int
    #: effective min-plus / FW tile throughput, scalar ops per second
    minplus_rate: float
    #: effective Near-Far edge-relaxation throughput at full occupancy
    relax_rate: float
    #: device memory bandwidth, bytes/s (roofline memory term)
    mem_bandwidth: float
    #: PCIe copy throughput, bytes/s (paper's measured TH)
    transfer_throughput: float
    #: fixed per-copy latency, seconds (driver + DMA setup) — this is what
    #: makes many small transfers slow and batching profitable (Fig 8)
    transfer_latency: float
    #: per-row DMA segment setup in strided (cudaMemcpy2D-style) copies;
    #: see :func:`repro.gpu.transfer.copy_duration_2d`
    row_transfer_overhead: float = 1.2e-6
    #: pageable-host derating factor for non-pinned copies
    pageable_factor: float = 0.55
    #: kernel launch overhead, seconds
    kernel_launch_overhead: float = 5e-6
    #: extra overhead of launching a dynamic-parallelism child kernel
    child_kernel_overhead: float = 12e-6
    #: maximum concurrently active thread blocks (occupancy ceiling)
    max_active_blocks: int = 2560
    #: fraction of max_active_blocks at which a memory-bound MSSP kernel
    #: saturates device throughput; below it, throughput falls linearly
    occupancy_saturation: float = 0.15
    #: per-bucket-iteration synchronisation cost of the MSSP kernel
    sync_overhead: float = 2e-6
    #: charge factor for O(m)-sized device allocations (CSR arrays, SSSP
    #: worklists). Graph bytes scale with s while device memory scales with
    #: s², so a scaled device charges sparse structures at s× their real
    #: bytes to preserve the paper's graph-size/device-memory ratio — and
    #: with it the Johnson batch size bat = (L − S)/(c·m).
    sparse_charge_factor: float = 1.0

    def scaled(
        self,
        s: float,
        *,
        transfer_exponent: float = 1.0,
        relax_exponent: float = 1.0,
    ) -> "DeviceSpec":
        """Scale the device for experiments at ``n' = s·n`` (see module doc).

        Baseline rules:

        * memory ∝ s² — dense matrix bytes are ``n²·W``, so block counts
          ``n_d``, batch counts ``n_b`` and component counts ``k`` stay in
          the paper's regime;
        * compute rates ∝ s and PCIe throughput ∝ s^``transfer_exponent``
          (default 1) — with both at ``s``, every cross-device and
          compute/transfer *ratio* whose work terms share an exponent is
          preserved (Johnson vs CPU, Johnson vs boundary, FW
          compute-dominance, Table V's stable ``n·m/s``);
        * per-copy latency and per-row DMA overhead unchanged — they are
          driver/DMA properties, not problem-size properties;
        * kernel launch / sync / child-kernel overheads ∝ s;
        * occupancy ceiling unchanged — Johnson batch sizes are
          scale-invariant under the sparse charge rule (bat = s²L/(s²·c·m·W)),
          so keeping ``max_active_blocks`` physical preserves the
          batch-size/occupancy balance;
        * O(m)-class allocations charged at s× real bytes
          (``sparse_charge_factor``) — graph bytes scale with s while device
          memory scales with s², and the paper's ``bat = (L−S)/(c·m)`` only
          survives scaling if the S/L ratio does.

        Because the three algorithms' work terms scale with different
        exponents (n³ FW, n·m Johnson, ~n^2.25 boundary), no single scaling
        preserves *every* paper ratio at once; the exponent knobs select the
        experiment's operating point (see EXPERIMENTS.md "device profiles"):

        * ``transfer_exponent=0`` ("transfer profile", Fig 8): keeps the
          physical PCIe speed so the boundary algorithm's small strided
          transfers sit in the same latency-bound regime as the paper's —
          the regime its batching optimisation attacks;
        * ``relax_exponent=0.5`` ("crossover profile", Table VI): positions
          the FW/Johnson crossover at the paper's average-degree operating
          point despite FW's n³ shrinking faster than Johnson's n·m.
        """
        if not 0 < s <= 1:
            raise ValueError("scale must be in (0, 1]")
        return replace(
            self,
            name=f"{self.name}@{s:g}",
            memory_bytes=max(1, int(self.memory_bytes * s * s)),
            minplus_rate=self.minplus_rate * s,
            relax_rate=self.relax_rate * s**relax_exponent,
            mem_bandwidth=self.mem_bandwidth * s,
            transfer_throughput=self.transfer_throughput * s**transfer_exponent,
            kernel_launch_overhead=self.kernel_launch_overhead * s,
            child_kernel_overhead=self.child_kernel_overhead * s,
            sync_overhead=self.sync_overhead * s,
            sparse_charge_factor=self.sparse_charge_factor * s,
        )


#: NVIDIA Tesla V100 (paper Table II): 16 GB HBM2, 900 GB/s, PCIe measured
#: at 11.75 GB/s. Effective kernel rates calibrated from Table VI.
V100 = DeviceSpec(
    name="V100",
    memory_bytes=16 * 1024**3,
    minplus_rate=3.0e12,
    relax_rate=1.9e9,
    mem_bandwidth=900e9,
    transfer_throughput=11.75e9,
    transfer_latency=12e-6,
    row_transfer_overhead=1.2e-6,
    max_active_blocks=2560,
)

#: NVIDIA Tesla K80 (one GK210 die, paper Table II): 12 GB GDDR5, 240 GB/s,
#: PCIe measured at 7.23 GB/s. Rates ≈5× below V100, matching Fig 7 vs Fig 6.
K80 = DeviceSpec(
    name="K80",
    memory_bytes=12 * 1024**3,
    minplus_rate=5.5e11,
    relax_rate=3.8e8,
    mem_bandwidth=240e9,
    transfer_throughput=7.23e9,
    transfer_latency=18e-6,
    row_transfer_overhead=2.5e-6,
    max_active_blocks=832,
)

#: A deliberately tiny device for unit tests: a few hundred KB of memory so
#: even n≈100 graphs go out-of-core, with fast rates so simulated numbers
#: stay readable.
TEST_DEVICE = DeviceSpec(
    name="test-gpu",
    memory_bytes=512 * 1024,
    minplus_rate=1e9,
    relax_rate=1e6,
    mem_bandwidth=1e9,
    transfer_throughput=1e8,
    transfer_latency=1e-5,
    row_transfer_overhead=2e-6,
    kernel_launch_overhead=1e-6,
    child_kernel_overhead=3e-6,
    max_active_blocks=16,
    sync_overhead=1e-6,
)


class Device:
    """A simulated GPU: spec + memory pool + timeline + streams.

    The ``host_ready`` clock models the CPU thread driving the device:
    synchronous operations block it, asynchronous ones only charge the launch
    overhead, which is how overlap pays off.

    With ``sanitize=True`` the device carries a
    :class:`~repro.sanitize.sanitizer.ScheduleSanitizer` that observes
    every stream operation, event edge, allocation and free, and detects
    cross-stream races, use-after-free, and uninitialized device reads —
    the simulated analogue of ``compute-sanitizer --tool racecheck``.
    Collect findings with :meth:`hazard_report`.

    With ``faults=`` set to a :class:`~repro.faults.FaultPlan`, every
    guarded operation (copies, kernel launches, allocations) consults the
    plan before executing; injected
    :class:`~repro.gpu.errors.TransientDeviceError` failures are retried
    under ``retry`` (a :class:`~repro.faults.RetryPolicy`) with capped
    exponential backoff charged to the timeline's ``"host"`` engine.
    :attr:`fault_report` tallies injections, retries and backoff.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        *,
        record_trace: bool = True,
        sanitize: bool = False,
        faults: "FaultPlan | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        from repro.faults.retry import FaultReport, RetryPolicy

        self.spec = spec
        self.sanitizer: ScheduleSanitizer | None = None
        if sanitize:
            from repro.sanitize.sanitizer import ScheduleSanitizer

            self.sanitizer = ScheduleSanitizer(spec.name)
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_report = FaultReport()
        self.memory = DeviceMemory(spec.memory_bytes)
        self.memory.observer = self.sanitizer
        self.memory.guard = self.run_guarded
        self.timeline = Timeline(record_trace=record_trace)
        self.host_ready = 0.0
        self._stream_counter = 0
        self._streams: list[Stream] = []
        self.default_stream = self.create_stream("default")

    def create_stream(self, name: str = "") -> Stream:
        self._stream_counter += 1
        stream = Stream(self, name or f"stream{self._stream_counter}")
        self._streams.append(stream)
        return stream

    def synchronize(self) -> float:
        """Block the host until all device work completes; returns the
        simulated wall-clock time at that point."""
        self.host_ready = max(self.host_ready, self.timeline.makespan)
        if self.sanitizer is not None:
            self.sanitizer.on_device_sync()
        return self.host_ready

    def hazard_report(self) -> "HazardReport":
        """Scan the sanitized schedule; requires ``sanitize=True``.

        Returns a :class:`~repro.sanitize.hazards.HazardReport`.
        """
        if self.sanitizer is None:
            raise ValueError(
                "device was created without sanitize=True; "
                "use Device(spec, sanitize=True) to enable the sanitizer"
            )
        return self.sanitizer.report()

    @property
    def elapsed(self) -> float:
        """Current simulated time (host view, without forcing a sync)."""
        return max(self.host_ready, self.timeline.makespan)

    def reset_clock(self) -> None:
        """Zero all clocks/traces (including every stream's) but keep memory
        contents. Used between calibration runs and measured runs. Also
        starts a fresh :attr:`fault_report` and rewinds the fault plan's
        attempt counters, so plan ordinals are relative to the current run."""
        from repro.faults.retry import FaultReport

        self.timeline.reset()
        self.host_ready = 0.0
        for stream in self._streams:
            stream.ready_at = 0.0
        if self.sanitizer is not None:
            self.sanitizer.reset_schedule()
        self.fault_report = FaultReport()
        if self.faults is not None:
            self.faults.reset()

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------
    def run_guarded(
        self,
        site: str,
        name: str,
        body: "Callable[[], _T]",
        on_fault: "Callable[[TransientDeviceError], None] | None" = None,
    ) -> _T:
        """Run ``body`` under the device's fault plan with bounded retry.

        Each attempt first consults the plan (which may raise a
        :class:`~repro.gpu.errors.TransientDeviceError` subclass). On a
        fault, ``on_fault`` charges the aborted attempt's cost to the
        timeline, then backoff per :attr:`retry` occupies the ``"host"``
        engine before the next attempt; once ``retry.max_attempts`` is
        spent the error propagates. With no fault plan this is exactly
        ``body()`` — zero overhead on the fault-free path.
        """
        if self.faults is None:
            return body()
        attempt = 1
        while True:
            try:
                self.faults.check(site, name)
            except TransientDeviceError as exc:
                self.fault_report.count_injected(site)
                if on_fault is not None:
                    on_fault(exc)
                if attempt >= self.retry.max_attempts:
                    self.fault_report.exhausted += 1
                    raise
                self.fault_report.retried += 1
                self._charge_backoff(self.retry.delay(attempt), site=site, name=name)
                attempt += 1
                continue
            return body()

    def _charge_backoff(self, delay: float, *, site: str, name: str) -> None:
        """Occupy the host for ``delay`` seconds of retry backoff."""
        op = self.timeline.schedule(
            "host",
            self.host_ready,
            delay,
            stream="host",
            name=f"backoff:{site}:{name}",
        )
        self.host_ready = op.end
        self.fault_report.backoff_seconds += delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device({self.spec.name}, mem={self.memory.used}/"
            f"{self.memory.capacity}B, t={self.elapsed:.6f}s)"
        )
