"""Kernel cost models for the simulated device.

Each function returns the modelled duration (seconds) of one kernel, built
roofline-style: ``max(flop time, memory time)`` plus the launch overhead.
The numeric work itself is done by the algorithm layer (:mod:`repro.core`,
:mod:`repro.sssp`) on the device arrays; the algorithm layer charges these
costs to a stream via :meth:`repro.gpu.stream.Stream.launch`, so one code
path yields both the distances and the simulated timing.

The Near-Far MSSP model additionally captures the two GPU-specific effects
the paper engineers around (Section III-B):

* **occupancy** — one SSSP instance occupies one thread block, so a batch of
  ``bat`` instances uses ``bat`` of the device's ``max_active_blocks``;
  memory-bound traversal kernels saturate device throughput at a fraction
  of full occupancy (``spec.occupancy_saturation``), below which the rate
  falls off linearly;
* **dynamic parallelism** — child kernels spread the edge lists of
  high-out-degree vertices across otherwise-idle blocks, restoring full
  throughput for those relaxations at a per-launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import DeviceSpec

__all__ = [
    "MsspWorkload",
    "extract_cost",
    "fw_tile_cost",
    "minplus_cost",
    "mssp_batch_cost",
]

#: bytes per distance value on the device — the paper uses 4-byte ``int``,
#: our numeric layer uses float32 tiles (see ``repro.core.minplus``), so the
#: modelled and actual element sizes agree.
DEVICE_ELEM_BYTES = 4


def _roofline(spec: "DeviceSpec", flops: float, nbytes: float, rate: float) -> float:
    return spec.kernel_launch_overhead + max(flops / rate, nbytes / spec.mem_bandwidth)


def minplus_cost(spec: "DeviceSpec", bi: int, bk: int, bj: int) -> float:
    """Cost of one tiled min-plus product ``C(bi×bj) ⊦ A(bi×bk) ⊗ B(bk×bj)``.

    2 ops (add + min) per inner element; with shared-memory tiling each
    operand element is read ``O(1)`` times from global memory.
    """
    flops = 2.0 * bi * bk * bj
    nbytes = DEVICE_ELEM_BYTES * (bi * bk + bk * bj + 2.0 * bi * bj)
    return _roofline(spec, flops, nbytes, spec.minplus_rate)


def fw_tile_cost(spec: "DeviceSpec", b: int) -> float:
    """Cost of running Floyd–Warshall to closure on one ``b×b`` tile.

    Same ``2b³`` op count as a min-plus product but with a sequential
    dependence across the ``b`` outer iterations, which costs a modest
    efficiency factor relative to the fully parallel product kernel.
    """
    flops = 2.0 * b**3 * 1.25
    nbytes = DEVICE_ELEM_BYTES * (b * b) * 3.0
    return _roofline(spec, flops, nbytes, spec.minplus_rate)


def extract_cost(spec: "DeviceSpec", rows: int, cols: int) -> float:
    """Cost of an on-device submatrix extraction (ExtractRow/ExtractCol in
    Algorithm 3): pure memory movement."""
    nbytes = DEVICE_ELEM_BYTES * rows * cols * 2.0
    return _roofline(spec, 0.0, nbytes, spec.minplus_rate)


@dataclass(frozen=True)
class MsspWorkload:
    """Workload statistics of one executed MSSP (multi-source SSSP) batch.

    Collected by the real Near-Far execution in
    :mod:`repro.sssp.near_far`; consumed by :func:`mssp_batch_cost`.
    """

    #: total edge relaxations performed across all sources in the batch
    relaxations: int
    #: relaxations of edges out of high-out-degree vertices (dynamic
    #: parallelism candidates)
    heavy_relaxations: int
    #: number of near/far bucket iterations (synchronisation points)
    iterations: int
    #: number of dynamic-parallelism child kernel launches that the heavy
    #: vertices would require (0 when the feature is off)
    child_launches: int

    def __post_init__(self) -> None:
        if self.heavy_relaxations > self.relaxations:
            raise ValueError("heavy_relaxations cannot exceed relaxations")


def mssp_batch_cost(
    spec: "DeviceSpec",
    workload: MsspWorkload,
    bat: int,
    *,
    dynamic_parallelism: bool,
) -> float:
    """Cost of one MSSP kernel processing ``bat`` SSSP instances.

    Without dynamic parallelism every relaxation runs at the
    occupancy-limited rate ``relax_rate · min(1, bat/max_active_blocks)``.
    With it, heavy-vertex relaxations run at the full rate but pay the
    child-kernel launch overheads.
    """
    if bat <= 0:
        raise ValueError("bat must be positive")
    saturation_blocks = max(1.0, spec.occupancy_saturation * spec.max_active_blocks)
    occupancy = min(1.0, bat / saturation_blocks)
    base_rate = spec.relax_rate * occupancy
    if dynamic_parallelism and workload.heavy_relaxations:
        light = workload.relaxations - workload.heavy_relaxations
        time = light / base_rate
        time += workload.heavy_relaxations / spec.relax_rate
        time += workload.child_launches * spec.child_kernel_overhead
    else:
        time = workload.relaxations / base_rate
    time += workload.iterations * spec.sync_overhead
    return spec.kernel_launch_overhead + time
