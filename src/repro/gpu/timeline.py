"""Discrete-event timeline for the simulated device.

A :class:`Timeline` owns a set of *engines* — independent hardware queues.
The simulated device uses three, mirroring the concurrency structure of a
real GPU with dual copy engines:

* ``"compute"`` — kernels from all streams serialise here,
* ``"h2d"`` — host-to-device copies,
* ``"d2h"`` — device-to-host copies,
* ``"host"`` — host-side stalls (retry backoff after injected transient
  faults); empty on fault-free runs, so timing cross-validation against
  the static plan verifier is unaffected.

An operation issued on a stream starts when both its stream and its engine
are free (``start = max(stream_ready, engine_ready)``), runs for its modelled
duration, and advances both clocks. This is the standard greedy list
schedule; with it, putting compute and copies on different streams genuinely
overlaps them, which is what the paper's double-buffering optimisation
exploits (Section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Timeline", "TimelineOp"]


@dataclass(frozen=True)
class TimelineOp:
    """One scheduled operation (kernel or copy) on the simulated device."""

    engine: str
    stream: str
    name: str
    start: float
    end: float
    nbytes: int = 0
    flops: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Per-engine clocks plus a trace of every scheduled operation."""

    engine_names: tuple[str, ...] = ("compute", "h2d", "d2h", "host")
    record_trace: bool = True
    _engine_ready: dict[str, float] = field(default_factory=dict)
    ops: list[TimelineOp] = field(default_factory=list)
    _op_count: int = 0

    def __post_init__(self) -> None:
        for name in self.engine_names:
            self._engine_ready.setdefault(name, 0.0)

    def engine_ready(self, engine: str) -> float:
        """Time at which ``engine`` becomes free."""
        return self._engine_ready[engine]

    def schedule(
        self,
        engine: str,
        stream_ready: float,
        duration: float,
        *,
        stream: str = "",
        name: str = "",
        nbytes: int = 0,
        flops: int = 0,
    ) -> TimelineOp:
        """Schedule one op; returns it (with resolved start/end times)."""
        if engine not in self._engine_ready:
            raise KeyError(f"unknown engine {engine!r}")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(stream_ready, self._engine_ready[engine])
        op = TimelineOp(
            engine=engine,
            stream=stream,
            name=name,
            start=start,
            end=start + duration,
            nbytes=nbytes,
            flops=flops,
        )
        self._engine_ready[engine] = op.end
        self._op_count += 1
        if self.record_trace:
            self.ops.append(op)
        return op

    @property
    def makespan(self) -> float:
        """Completion time of the last operation across all engines."""
        return max(self._engine_ready.values(), default=0.0)

    @property
    def num_ops(self) -> int:
        return self._op_count

    def busy_time(self, engine: str) -> float:
        """Total occupied time on ``engine`` (needs the trace enabled)."""
        return sum(op.duration for op in self.ops if op.engine == engine)

    def engine_ops(self, engine: str) -> list[TimelineOp]:
        return [op for op in self.ops if op.engine == engine]

    def reset(self) -> None:
        """Zero all clocks and clear the trace."""
        for name in self._engine_ready:
            self._engine_ready[name] = 0.0
        self.ops.clear()
        self._op_count = 0

    def advance_to(self, t: float) -> None:
        """Floor every engine clock at ``t`` (cross-device barrier support:
        no engine may start work before the barrier time)."""
        for name in self._engine_ready:
            self._engine_ready[name] = max(self._engine_ready[name], t)

    def validate(self) -> None:
        """Check scheduling invariants; raises ``AssertionError`` on breach.

        Per-engine ops must be non-overlapping and ordered, and no op may
        have a negative duration. Used by property tests.
        """
        by_engine: dict[str, list[TimelineOp]] = {}
        for op in self.ops:
            assert op.end >= op.start, f"negative duration: {op}"
            by_engine.setdefault(op.engine, []).append(op)
        for engine, ops in by_engine.items():
            for prev, cur in zip(ops, ops[1:]):
                assert cur.start >= prev.end, (
                    f"engine {engine} overlap: {prev} then {cur}"
                )
