"""CUDA-like streams and events for the simulated device.

A :class:`Stream` is an ordered queue of operations. Operations on the same
stream serialise; operations on different streams may overlap subject to
engine availability (one compute engine, one copy engine per direction — see
:mod:`repro.gpu.timeline`). :class:`Event` gives cross-stream ordering, which
the double-buffered boundary algorithm uses to hand buffers between its
compute and copy streams.

Copies come in synchronous (`copy_*`, blocks the simulated host thread, like
``cudaMemcpy``) and asynchronous (`copy_*_async`, like ``cudaMemcpyAsync``)
flavours; kernels are always asynchronous, charging only their launch
overhead to the host clock.

When the owning device was created with ``sanitize=True``, every stream
operation is also reported to the schedule sanitizer
(:mod:`repro.sanitize.sanitizer`): copies carry their source/destination
buffers, kernels their declared ``reads=``/``writes=`` sets, and
record/wait/synchronize contribute the happens-before edges. The
``annotate`` pseudo-op exists for host-side numeric work that models a
kernel side effect (e.g. the ``memset`` that clears an accumulation tile)
without occupying the timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

from repro.gpu.memory import DeviceArray, HostBuffer
from repro.gpu.transfer import (
    aborted_copy_duration,
    copy_duration,
    copy_duration_2d,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device
    from repro.sanitize.sanitizer import Clock

__all__ = ["Event", "Stream"]

#: operand types the sanitizer hooks accept
Operand = Union[DeviceArray, HostBuffer, np.ndarray]


class Event:
    """Marks a point in a stream's execution (``cudaEvent`` analogue).

    ``_clock`` is the schedule sanitizer's snapshot of the recording
    stream's vector clock; it stays ``None`` on unsanitized devices.
    """

    __slots__ = ("name", "time", "_clock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.time = 0.0
        self._clock: "Clock | None" = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r}, t={self.time:.6f})"


def _as_host_array(host: "HostBuffer | np.ndarray", pinned: bool | None) -> tuple[np.ndarray, bool]:
    if isinstance(host, HostBuffer):
        return host.data, host.pinned if pinned is None else pinned
    # bare numpy arrays default to pageable host memory
    return host, False if pinned is None else pinned


def _as_device_array(dev: "DeviceArray | np.ndarray") -> np.ndarray:
    return dev.data if isinstance(dev, DeviceArray) else dev


class Stream:
    """One in-order operation queue on a :class:`~repro.gpu.device.Device`."""

    def __init__(self, device: "Device", name: str) -> None:
        self.device = device
        self.name = name
        self.ready_at = 0.0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        name: str,
        duration: float,
        *,
        flops: int = 0,
        nbytes: int = 0,
        reads: Iterable[Operand] = (),
        writes: Iterable[Operand] = (),
    ) -> None:
        """Enqueue a kernel with a pre-computed duration (asynchronous).

        The host pays only the launch overhead; the kernel runs on the
        compute engine when the stream and engine are free. ``reads`` and
        ``writes`` declare the buffers (device arrays or views into them)
        the kernel touches — ignored unless the device is sanitized.
        """
        spec = self.device.spec

        def body() -> None:
            self.device.host_ready += spec.kernel_launch_overhead
            start_ready = max(self.ready_at, self.device.host_ready)
            op = self.device.timeline.schedule(
                "compute", start_ready, duration,
                stream=self.name, name=name, flops=flops, nbytes=nbytes,
            )
            self.ready_at = op.end

        self.device.run_guarded("kernel", name, body, on_fault=self._abort_launch)
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_kernel(self, name, reads, writes)

    def _abort_launch(self, exc) -> None:
        """Charge one failed launch attempt: the overhead is spent, the
        kernel never reaches the compute engine."""
        self.device.host_ready += self.device.spec.kernel_launch_overhead

    def annotate(
        self,
        name: str,
        *,
        reads: Iterable[Operand] = (),
        writes: Iterable[Operand] = (),
    ) -> None:
        """Record a timeline-free access for the schedule sanitizer.

        Host-side numeric work that *models* a kernel side effect — e.g.
        the ``memset`` clearing an accumulation tile before a min-plus
        chain — performs real array writes without a matching ``launch``.
        ``annotate`` gives the sanitizer that access at the stream's
        current position so its happens-before accounting stays complete.
        No-op on unsanitized devices.
        """
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_kernel(self, name, reads, writes)

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def _copy(self, engine: str, name: str, nbytes: int, pinned: bool, *, sync: bool) -> None:
        spec = self.device.spec
        duration = copy_duration(spec, nbytes, pinned=pinned)
        start_ready = max(self.ready_at, self.device.host_ready)
        op = self.device.timeline.schedule(
            engine, start_ready, duration, stream=self.name, name=name, nbytes=nbytes,
        )
        self.ready_at = op.end
        if sync:
            self.device.host_ready = max(self.device.host_ready, op.end)
        else:
            self.device.host_ready += spec.kernel_launch_overhead

    def _abort_copy(self, engine: str, name: str, nbytes: int, pinned: bool):
        """``on_fault`` handler for a guarded copy: the aborted attempt
        occupies its copy engine for latency plus the delivered prefix
        (``TransferError.progress``), charged with ``nbytes=0`` so byte
        statistics count delivered data only. Detecting the failure
        synchronises the host with the abort."""

        def on_fault(exc) -> None:
            fraction = float(getattr(exc, "progress", 0.0))
            duration = aborted_copy_duration(
                self.device.spec, nbytes, fraction, pinned=pinned
            )
            start_ready = max(self.ready_at, self.device.host_ready)
            op = self.device.timeline.schedule(
                engine, start_ready, duration,
                stream=self.name, name=f"{name}!abort", nbytes=0,
            )
            self.ready_at = op.end
            self.device.host_ready = max(self.device.host_ready, op.end)

        return on_fault

    def _sanitize_copy(self, name: str, dst: Operand, src: Operand, *, sync: bool) -> None:
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_copy(self, name, dst, src, sync=sync)

    def copy_h2d(
        self,
        dst: DeviceArray | np.ndarray,
        src: HostBuffer | np.ndarray,
        *,
        name: str = "h2d",
        pinned: bool | None = None,
    ) -> None:
        """Synchronous host→device copy (``cudaMemcpy`` semantics).

        ``dst`` may be a :class:`DeviceArray` or a numpy view into one;
        ``pinned`` overrides the host-side pinned-ness (bare arrays default
        to pageable, :class:`HostBuffer` carries its own flag).
        """
        data, pin = _as_host_array(src, pinned)

        def body() -> None:
            _as_device_array(dst)[...] = data
            self._copy("h2d", name, data.nbytes, pin, sync=True)

        self.device.run_guarded(
            "h2d", name, body, on_fault=self._abort_copy("h2d", name, data.nbytes, pin)
        )
        self._sanitize_copy(name, dst, data, sync=True)

    def copy_h2d_async(
        self,
        dst: DeviceArray | np.ndarray,
        src: HostBuffer | np.ndarray,
        *,
        name: str = "h2d",
        pinned: bool | None = None,
    ) -> None:
        """Asynchronous host→device copy; pinned sources get full speed."""
        data, pin = _as_host_array(src, pinned)

        def body() -> None:
            _as_device_array(dst)[...] = data
            self._copy("h2d", name, data.nbytes, pin, sync=False)

        self.device.run_guarded(
            "h2d", name, body, on_fault=self._abort_copy("h2d", name, data.nbytes, pin)
        )
        self._sanitize_copy(name, dst, data, sync=False)

    def copy_d2h(
        self,
        dst: HostBuffer | np.ndarray,
        src: DeviceArray | np.ndarray,
        *,
        name: str = "d2h",
        pinned: bool | None = None,
    ) -> None:
        """Synchronous device→host copy."""
        data, pin = _as_host_array(dst, pinned)

        def body() -> None:
            data[...] = _as_device_array(src)
            self._copy("d2h", name, data.nbytes, pin, sync=True)

        self.device.run_guarded(
            "d2h", name, body, on_fault=self._abort_copy("d2h", name, data.nbytes, pin)
        )
        self._sanitize_copy(name, data, src, sync=True)

    def copy_d2h_async(
        self,
        dst: HostBuffer | np.ndarray,
        src: DeviceArray | np.ndarray,
        *,
        name: str = "d2h",
        pinned: bool | None = None,
    ) -> None:
        """Asynchronous device→host copy."""
        data, pin = _as_host_array(dst, pinned)

        def body() -> None:
            data[...] = _as_device_array(src)
            self._copy("d2h", name, data.nbytes, pin, sync=False)

        self.device.run_guarded(
            "d2h", name, body, on_fault=self._abort_copy("d2h", name, data.nbytes, pin)
        )
        self._sanitize_copy(name, data, src, sync=False)

    def copy_d2h_2d(
        self,
        dst: HostBuffer | np.ndarray,
        src: DeviceArray | np.ndarray,
        *,
        name: str = "d2h2d",
        pinned: bool | None = None,
        sync: bool = True,
    ) -> None:
        """Strided device→host copy (``cudaMemcpy2D`` semantics).

        The destination is a 2-D view whose rows are non-contiguous in host
        memory (e.g. a block of the n×n distance matrix); each row is a DMA
        segment paying ``row_transfer_overhead``. This is the slow path the
        boundary algorithm's transfer batching replaces with contiguous
        strip copies.
        """
        data, pin = _as_host_array(dst, pinned)
        if data.ndim != 2:
            raise ValueError("copy_d2h_2d needs a 2-D destination")

        def body() -> None:
            data[...] = _as_device_array(src)
            duration = copy_duration_2d(
                self.device.spec, data.shape[0], data.shape[1] * data.itemsize,
                pinned=pin,
            )
            start_ready = max(self.ready_at, self.device.host_ready)
            op = self.device.timeline.schedule(
                "d2h", start_ready, duration,
                stream=self.name, name=name, nbytes=data.nbytes,
            )
            self.ready_at = op.end
            if sync:
                self.device.host_ready = max(self.device.host_ready, op.end)
            else:
                self.device.host_ready += self.device.spec.kernel_launch_overhead

        self.device.run_guarded(
            "d2h", name, body, on_fault=self._abort_copy("d2h", name, data.nbytes, pin)
        )
        self._sanitize_copy(name, data, src, sync=sync)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def record(self, event: Event) -> Event:
        """Record ``event`` at the stream's current completion point."""
        event.time = self.ready_at
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_record(self, event)
        return event

    def wait(self, event: Event) -> None:
        """Make subsequent work on this stream wait for ``event``."""
        self.ready_at = max(self.ready_at, event.time)
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_wait(self, event)

    def synchronize(self) -> float:
        """Block the host until this stream's queued work completes."""
        self.device.host_ready = max(self.device.host_ready, self.ready_at)
        if self.device.sanitizer is not None:
            self.device.sanitizer.on_stream_sync(self)
        return self.device.host_ready

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.name!r}, ready_at={self.ready_at:.6f})"
