"""Device memory allocator and array handles.

:class:`DeviceMemory` enforces the device capacity — the single constraint
that makes the paper's problem *out-of-core*. Every block size, Johnson batch
size, and boundary-algorithm component count is derived from how much fits.

:class:`DeviceArray` wraps a numpy array living "on the device". Algorithms
do their real numeric work on ``.data``; the simulated cost accounting
happens in :mod:`repro.gpu.kernels` / :mod:`repro.gpu.transfer`.

:class:`HostBuffer` models host memory that may be *pinned* (page-locked):
pinned transfers run at full PCIe throughput, pageable ones at a derated
fraction — the distinction behind the paper's use of pinned staging buffers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.gpu.errors import OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sanitize.sanitizer import ScheduleSanitizer

__all__ = ["DeviceArray", "DeviceMemory", "HostBuffer"]


@dataclass
class HostBuffer:
    """Host-side staging buffer; ``pinned`` buffers transfer at full speed."""

    data: np.ndarray
    pinned: bool = True

    @classmethod
    def empty(cls, shape: tuple[int, ...], dtype=np.float64, *, pinned: bool = True) -> "HostBuffer":
        return cls(np.empty(shape, dtype=dtype), pinned=pinned)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


class DeviceArray:
    """A numpy array resident in simulated device memory.

    Obtained from :meth:`DeviceMemory.alloc`; freeing returns its bytes to
    the pool. Usable as a context manager for scoped allocations.
    ``charged_bytes`` may differ from the real array bytes on scaled
    devices (see ``DeviceSpec.sparse_charge_factor``).
    """

    __slots__ = ("data", "_pool", "_freed", "name", "charged_bytes")

    def __init__(
        self, data: np.ndarray, pool: "DeviceMemory", name: str = "",
        charged_bytes: int | None = None,
    ) -> None:
        self.data = data
        self._pool = pool
        self._freed = False
        self.name = name
        self.charged_bytes = data.nbytes if charged_bytes is None else charged_bytes

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Return this allocation's bytes to the device pool (idempotent)."""
        if not self._freed:
            self._pool._release(self)
            self._freed = True

    def __enter__(self) -> "DeviceArray":
        return self

    def __exit__(self, *exc) -> None:
        self.free()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{self.nbytes}B"
        return f"DeviceArray({self.name!r}, shape={self.data.shape}, {state})"


@dataclass
class DeviceMemory:
    """Bump-counted device memory pool with a hard capacity.

    ``observer`` is the owning device's schedule sanitizer (or ``None``);
    it is told about every allocation and free so use-after-free and
    uninitialized reads can be detected.
    """

    capacity: int
    used: int = 0
    peak: int = 0
    observer: "ScheduleSanitizer | None" = field(default=None, repr=False)
    #: owning device's fault guard (``Device.run_guarded``); when set,
    #: allocations route through it so an injected ``alloc`` fault can be
    #: retried like a transient ``cudaMalloc`` failure
    guard: "Callable | None" = field(default=None, repr=False)
    _live: dict[int, "DeviceArray"] = field(default_factory=dict, repr=False)

    def alloc(
        self,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
        *,
        name: str = "",
        fill=None,
        charged_bytes: int | None = None,
    ) -> DeviceArray:
        """Allocate a device array; raises :class:`OutOfMemoryError` if it
        does not fit. ``charged_bytes`` overrides the bytes accounted
        against the capacity (scaled-device sparse structures)."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        charge = nbytes if charged_bytes is None else int(charged_bytes)

        def body() -> DeviceArray:
            if self.used + charge > self.capacity:
                raise OutOfMemoryError(charge, self.free_bytes, self.capacity)
            if fill is None:
                data = np.empty(shape, dtype=dtype)
            else:
                data = np.full(shape, fill, dtype=dtype)
            arr = DeviceArray(data, self, name=name, charged_bytes=charge)
            self.used += charge
            self.peak = max(self.peak, self.used)
            self._live[id(arr)] = arr
            if self.observer is not None:
                self.observer.on_alloc(arr, prefilled=fill is not None)
            return arr

        if self.guard is None:
            return body()
        return self.guard("alloc", name or "alloc", body)

    def upload(self, host: np.ndarray, *, name: str = "") -> DeviceArray:
        """Allocate and copy a host array's contents (no time accounting —
        use :meth:`repro.gpu.stream.Stream.copy_h2d` for timed uploads)."""
        arr = self.alloc(host.shape, host.dtype, name=name)
        arr.data[...] = host
        if self.observer is not None:
            # the untimed upload initialises the bytes, like a fill
            self.observer.on_alloc(arr, prefilled=True)
        return arr

    def _release(self, arr: DeviceArray) -> None:
        if id(arr) not in self._live:
            raise ValueError("double free or foreign array")
        del self._live[id(arr)]
        self.used -= arr.charged_bytes
        assert self.used >= 0
        if self.observer is not None:
            self.observer.on_free(arr)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used

    @property
    def num_live(self) -> int:
        return len(self._live)

    def scope(self) -> "_AllocScope":
        """Context manager that frees everything allocated inside it."""
        return _AllocScope(self)

    @contextmanager
    def cleanup_on_error(self):
        """Free every allocation made inside the block if it raises.

        The out-of-core drivers wrap their bodies in this so a mid-run
        failure (planning bug, OOM from an explicit oversized block size)
        cannot leak device memory — the device stays reusable.
        """
        before = set(self._live)
        try:
            yield
        except BaseException:
            for arr_id in list(self._live.keys() - before):
                self._live[arr_id].free()
            raise


class _AllocScope:
    """Frees all arrays allocated through it on exit."""

    def __init__(self, pool: DeviceMemory) -> None:
        self._pool = pool
        self._arrays: list[DeviceArray] = []

    def alloc(self, *args, **kwargs) -> DeviceArray:
        arr = self._pool.alloc(*args, **kwargs)
        self._arrays.append(arr)
        return arr

    def upload(self, *args, **kwargs) -> DeviceArray:
        arr = self._pool.upload(*args, **kwargs)
        self._arrays.append(arr)
        return arr

    def __enter__(self) -> "_AllocScope":
        return self

    def __exit__(self, *exc) -> None:
        for arr in reversed(self._arrays):
            arr.free()

    def __iter__(self) -> Iterator[DeviceArray]:  # pragma: no cover
        return iter(self._arrays)
