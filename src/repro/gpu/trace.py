"""Timeline trace export and utilization reporting.

Debug/analysis utilities over the device's recorded schedule:

* :func:`utilization_report` — per-engine busy fractions, overlap factor,
  and top kernels by time, the numbers you'd read off ``nvprof``;
* :func:`export_chrome_trace` — the Chrome tracing JSON format
  (``chrome://tracing`` / Perfetto), one row per engine, so a simulated
  schedule can be inspected visually like a real profiler capture.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

from repro.gpu.device import Device

__all__ = ["EngineUtilization", "UtilizationReport", "export_chrome_trace", "utilization_report"]


@dataclass(frozen=True)
class EngineUtilization:
    engine: str
    busy_seconds: float
    busy_fraction: float
    num_ops: int


@dataclass(frozen=True)
class UtilizationReport:
    makespan: float
    engines: list[EngineUtilization]
    #: Σ busy / makespan; >1 means engines genuinely overlapped
    overlap_factor: float
    #: (name, total seconds) sorted descending
    top_ops: list[tuple[str, float]]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"makespan: {self.makespan:.6f}s (overlap {self.overlap_factor:.2f}x)"]
        for e in self.engines:
            lines.append(
                f"  {e.engine:<8} busy {e.busy_fraction:6.1%} "
                f"({e.busy_seconds:.6f}s, {e.num_ops} ops)"
            )
        for name, t in self.top_ops[:5]:
            lines.append(f"  top: {name:<16} {t:.6f}s")
        return "\n".join(lines)


def utilization_report(device: Device, *, top: int = 10) -> UtilizationReport:
    """Summarise the recorded schedule (requires ``record_trace=True``)."""
    tl = device.timeline
    makespan = tl.makespan or 1e-30
    engines = []
    total_busy = 0.0
    per_name: dict[str, float] = defaultdict(float)
    for engine in tl.engine_names:
        ops = tl.engine_ops(engine)
        if not ops and engine == "host":
            # the host engine only carries retry backoff; keep fault-free
            # reports to the three device engines
            continue
        busy = sum(op.duration for op in ops)
        total_busy += busy
        engines.append(
            EngineUtilization(
                engine=engine,
                busy_seconds=busy,
                busy_fraction=busy / makespan,
                num_ops=len(ops),
            )
        )
    for op in tl.ops:
        per_name[op.name or op.engine] += op.duration
    top_ops = sorted(per_name.items(), key=lambda kv: -kv[1])[:top]
    return UtilizationReport(
        makespan=tl.makespan,
        engines=engines,
        overlap_factor=total_busy / makespan,
        top_ops=top_ops,
    )


def export_chrome_trace(device: Device, path: str | Path) -> Path:
    """Write the schedule as Chrome tracing JSON; returns the path."""
    events = []
    pids = {name: i for i, name in enumerate(device.timeline.engine_names)}
    for name, pid in pids.items():
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": f"engine:{name}"}}
        )
    for op in device.timeline.ops:
        events.append(
            {
                "name": op.name or op.engine,
                "cat": op.engine,
                "ph": "X",
                "pid": pids[op.engine],
                "tid": 0,
                "ts": op.start * 1e6,  # microseconds
                "dur": op.duration * 1e6,
                "args": {"stream": op.stream, "nbytes": op.nbytes, "flops": op.flops},
            }
        )
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": events, "displayTimeUnit": "ms"}))
    return path
