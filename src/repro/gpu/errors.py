"""Exceptions raised by the simulated GPU substrate."""

from __future__ import annotations

__all__ = [
    "AllocFaultError",
    "DeviceError",
    "KernelFaultError",
    "OutOfMemoryError",
    "TransferError",
    "TransientDeviceError",
]


class DeviceError(RuntimeError):
    """Base class for simulated-device failures."""


class TransientDeviceError(DeviceError):
    """A *recoverable* device failure injected by a fault plan.

    Transient errors model the failures real long-running GPU jobs see —
    a PCIe copy that times out, a kernel killed by an ECC event, an
    allocation that races a fragmented pool. They are retryable: the
    device's bounded-retry layer (:meth:`repro.gpu.device.Device.run_guarded`)
    re-attempts the operation with capped exponential backoff. Crucially
    they are *not* :class:`OutOfMemoryError`, which reflects a planning
    bug and must never be retried.
    """

    def __init__(self, site: str, op: str, ordinal: int, detail: str = "") -> None:
        msg = f"injected transient {site} fault at attempt #{ordinal}"
        if op:
            msg += f" ({op})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.site = site
        self.op = op
        self.ordinal = ordinal


class TransferError(TransientDeviceError):
    """A host↔device copy failed mid-flight.

    ``progress`` is the fraction of the payload that crossed the bus
    before the failure; the aborted attempt is charged to the timeline at
    that fraction so timing reports stay honest.
    """

    def __init__(
        self, site: str, op: str, ordinal: int, *, progress: float = 0.0
    ) -> None:
        super().__init__(site, op, ordinal)
        self.progress = progress


class KernelFaultError(TransientDeviceError):
    """A kernel launch was rejected or the kernel was killed mid-run."""


class AllocFaultError(TransientDeviceError):
    """A device allocation transiently failed (*not* a capacity OOM)."""


class OutOfMemoryError(DeviceError):
    """Raised when an allocation exceeds the device memory capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the out-of-core planners size
    their blocks/batches to avoid this, and the tests assert it fires when
    they don't.
    """

    def __init__(self, requested: int, free: int, capacity: int) -> None:
        super().__init__(
            f"device OOM: requested {requested} bytes with {free} free "
            f"of {capacity} total"
        )
        self.requested = requested
        self.free = free
        self.capacity = capacity
