"""Exceptions raised by the simulated GPU substrate."""

from __future__ import annotations

__all__ = ["DeviceError", "OutOfMemoryError"]


class DeviceError(RuntimeError):
    """Base class for simulated-device failures."""


class OutOfMemoryError(DeviceError):
    """Raised when an allocation exceeds the device memory capacity.

    Mirrors ``cudaErrorMemoryAllocation``: the out-of-core planners size
    their blocks/batches to avoid this, and the tests assert it fires when
    they don't.
    """

    def __init__(self, requested: int, free: int, capacity: int) -> None:
        super().__init__(
            f"device OOM: requested {requested} bytes with {free} free "
            f"of {capacity} total"
        )
        self.requested = requested
        self.free = free
        self.capacity = capacity
