"""Model-constant sensitivity analysis.

The performance study rests on calibrated device constants (DESIGN.md §2),
so a reviewer's first question is *"how much do the conclusions move if a
constant is off by 2×?"*. :func:`sweep_constant` answers it mechanically:
re-evaluate any metric under multiplicative perturbations of one
:class:`~repro.gpu.device.DeviceSpec` field and report the elasticity
(d log metric / d log constant). Elasticities near 0 mean the conclusion is
robust to that constant; near ±1 mean the metric simply rescales with it.

Used by ``benchmarks/test_model_sensitivity.py`` to show the Fig 2 speedup
is calibration-robust.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.gpu.device import DeviceSpec

__all__ = ["SensitivityPoint", "SensitivityResult", "sweep_constant"]


@dataclass(frozen=True)
class SensitivityPoint:
    factor: float
    value: float


@dataclass(frozen=True)
class SensitivityResult:
    """Metric values across perturbations of one spec field."""

    field: str
    baseline: float
    points: tuple[SensitivityPoint, ...]

    @property
    def elasticity(self) -> float:
        """Log–log slope of metric vs factor (0 = insensitive)."""
        xs = np.log([p.factor for p in self.points])
        ys = np.log([max(p.value, 1e-300) for p in self.points])
        if np.allclose(xs, xs[0]):
            return 0.0
        return float(np.polyfit(xs, ys, 1)[0])

    @property
    def spread(self) -> float:
        """max/min metric over the sweep."""
        vals = [p.value for p in self.points]
        return max(vals) / min(vals) if min(vals) > 0 else np.inf

    def describe(self) -> str:
        pts = ", ".join(f"x{p.factor:g}→{p.value:.4g}" for p in self.points)
        return (
            f"{self.field}: elasticity {self.elasticity:+.2f}, "
            f"spread {self.spread:.2f}x ({pts})"
        )


def sweep_constant(
    spec: DeviceSpec,
    field: str,
    metric: Callable[[DeviceSpec], float],
    *,
    factors: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> SensitivityResult:
    """Evaluate ``metric`` under multiplicative perturbations of ``field``.

    ``metric`` receives the perturbed spec and returns a positive number
    (a simulated time, a speedup, a crossover point, …).
    """
    base_value = getattr(spec, field)
    if not isinstance(base_value, (int, float)):
        raise TypeError(f"{field!r} is not a numeric spec field")
    points = []
    baseline = None
    for factor in factors:
        perturbed = replace(spec, **{field: type(base_value)(base_value * factor)})
        value = float(metric(perturbed))
        points.append(SensitivityPoint(factor=factor, value=value))
        if factor == 1.0:
            baseline = value
    if baseline is None:
        baseline = float(metric(spec))
    return SensitivityResult(field=field, baseline=baseline, points=tuple(points))
