"""Simulated multicore CPU executor.

The paper compares its out-of-core GPU implementations against CPU
baselines; to put both on a coherent time base (DESIGN.md §2), CPU baseline
times are produced by the same recipe as GPU times: real algorithm
executions supply operation counts, and a machine model with calibrated
per-operation rates converts counts to simulated seconds.

Two machine presets mirror the paper's hardware:

* :data:`XEON_E5_2680` — the 14-core/28-thread Ivy Bridge host of the
  paper's own BGL-plus runs (Section V-A);
* :data:`HASWELL_32` — the dual-socket 32-core/64-thread machine on which
  SuperFW's and Galois's numbers were reported (Section V-C).

:func:`measured_cpu` (opt-in, never applied by default) swaps a preset's
``fw_rate`` for this machine's autotuned kernel rate — see
:mod:`repro.cpumodel.measured`.
"""

from repro.cpumodel.measured import measured_cpu, measured_fw_rate
from repro.cpumodel.model import HASWELL_32, XEON_E5_2680, CpuSpec

__all__ = [
    "CpuSpec",
    "HASWELL_32",
    "XEON_E5_2680",
    "measured_cpu",
    "measured_fw_rate",
]
