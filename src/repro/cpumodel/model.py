"""CPU machine specifications and time model.

Rates are *effective* per-thread throughputs, back-calculated so the model
lands in the paper's measured bands (each constant's provenance is on its
preset):

* Dijkstra-based APSP (BGL-plus) costs one base per-thread rate, derated
  ~1.4× when the CSR working set exceeds the last-level cache (DRAM
  streaming). The derating separates the heavyweight FEM matrices
  (pkustk14, SiO2, …) from everything else; it is deliberately modest —
  the class split between Fig 2's 8–12× and Fig 3's 2.2–2.8× comes from
  the GPU side (boundary vs Johnson), not from the CPU.
* ``scaled(s)`` matches :meth:`repro.gpu.device.DeviceSpec.scaled`: rates
  and LLC size scale with ``s``, keeping CPU/GPU ratios at scaled problem
  sizes equal to the paper's at full size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CpuSpec", "XEON_E5_2680", "HASWELL_32"]


@dataclass(frozen=True)
class CpuSpec:
    """Constants describing one (simulated) multicore CPU."""

    name: str
    cores: int
    threads: int
    #: combined Dijkstra rate: (heap ops + edge relaxations)/s per thread,
    #: cache-resident CSR
    dijkstra_rate: float
    #: same, DRAM-resident CSR (working set beyond the LLC)
    dijkstra_rate_dram: float
    #: delta-stepping relaxations/s per thread (Galois-style runtime)
    delta_rate: float
    #: blocked-FW min-plus scalar ops/s per core (vectorised)
    fw_rate: float
    #: last-level cache size, bytes
    llc_bytes: int
    #: parallel efficiency of embarrassingly parallel source-loops
    parallel_efficiency: float = 0.85

    def scaled(self, s: float) -> "CpuSpec":
        """Scale rates and cache with ``s`` to match the scaled GPU model.

        Traversal rates (Dijkstra, delta-stepping) scale with ``s`` like the
        GPU's — their work terms are ``n·m ∝ s²``, so CPU/GPU ratios are
        preserved. ``fw_rate`` scales with ``s²`` because SuperFW's work is
        ``n³ ∝ s³`` while the Johnson runs it is compared against (Fig 4)
        scale as ``s²``; matching exponents keeps the reported speedup band.
        The LLC scales with ``s`` (CSR bytes ∝ m ∝ s) so the cache-residency
        split between road and FEM graphs lands where the paper's does.
        """
        if not 0 < s <= 1:
            raise ValueError("scale must be in (0, 1]")
        return replace(
            self,
            name=f"{self.name}@{s:g}",
            dijkstra_rate=self.dijkstra_rate * s,
            dijkstra_rate_dram=self.dijkstra_rate_dram * s,
            delta_rate=self.delta_rate * s,
            fw_rate=self.fw_rate * s * s,
            llc_bytes=max(1, int(self.llc_bytes * s)),
        )

    # ------------------------------------------------------------------
    def csr_bytes(self, n: int, m: int) -> int:
        """Working-set bytes of one CSR traversal (indptr+indices+weights)."""
        return 8 * (n + 1) + 12 * m

    def dijkstra_ops_rate(self, n: int, m: int) -> float:
        """Per-thread Dijkstra rate for a graph of this size."""
        if self.csr_bytes(n, m) <= self.llc_bytes:
            return self.dijkstra_rate
        return self.dijkstra_rate_dram

    def source_parallel_time(self, per_source_seconds: float, num_sources: int) -> float:
        """Time of an OpenMP-style loop over independent sources."""
        return per_source_seconds * num_sources / (self.threads * self.parallel_efficiency)


#: The paper's own baseline host (Section V-A): Intel Xeon E5-2680 v2,
#: 14 cores / 28 hyperthreads, 2.4 GHz, ~35 MB LLC.
#:
#: ``dijkstra_rate`` ≈ 4e7 combined ops/s/thread is back-calculated jointly
#: from Fig 2 (BGL-plus 8.22–12.40× slower than the boundary algorithm on
#: road/redistricting graphs) and Fig 3 (2.23–2.79× slower than the
#: out-of-core Johnson runs on FEM graphs).
XEON_E5_2680 = CpuSpec(
    name="Xeon-E5-2680",
    cores=14,
    threads=28,
    dijkstra_rate=4.0e7,
    dijkstra_rate_dram=2.9e7,
    delta_rate=2.5e5,
    fw_rate=2.0e9,
    llc_bytes=35 * 1024 * 1024,
)

#: The machine behind the SuperFW and Galois numbers (Section V-C): dual
#: 16-core Haswell E5-2698 v3, 64 threads.
#:
#: ``fw_rate`` ≈ 3.6e9 ops/s/core makes SuperFW's n³ run land in Fig 4's
#: 4.70–69.2× band relative to our Johnson runs; ``delta_rate`` ≈ 2.5e5
#: relaxations/s/thread reproduces the reported Galois times (the paper
#: itself measures Galois 79.9–152.6× slower than the GPU — the reported
#: numbers imply a low effective per-thread rate for its APSP loop).
HASWELL_32 = CpuSpec(
    name="Haswell-2x16",
    cores=32,
    threads=64,
    dijkstra_rate=5.0e7,
    dijkstra_rate_dram=3.6e7,
    delta_rate=2.5e5,
    fw_rate=3.6e9,
    llc_bytes=80 * 1024 * 1024,
)
