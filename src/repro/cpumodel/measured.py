"""Opt-in calibration of the CPU model from the autotuned kernel rate.

The presets in :mod:`repro.cpumodel.model` carry *paper-band* rates —
back-calculated so the simulated baselines land in the published speedup
bands — and the default selector/baseline paths must keep them, or the
reproduction's Table/Figure bands drift. This module is the explicit
bridge to *this* machine instead: :func:`measured_cpu` swaps a preset's
``fw_rate`` for the autotuned min-plus winner recorded by
``python -m repro tune-kernels`` (the same number
:class:`~repro.verifyplan.timing.TimingCalibration` prices analytic
selection with), so SuperFW-style ``n³`` estimates predict local host
wall-clock rather than the paper's hardware.

Nothing imports this module by default — calibration is a caller choice,
exactly like ``select --analytic --calibrated``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.cpumodel.model import CpuSpec

__all__ = ["measured_cpu", "measured_fw_rate"]


def measured_fw_rate(
    spec: CpuSpec, kernels_path: Path | str | None = None
) -> float | None:
    """Per-core min-plus rate implied by this machine's tuned winner.

    The tuned Gop/s is a whole-machine figure (the winner may be a
    threaded config), so it is divided across the spec's cores to fit the
    :class:`CpuSpec` convention of per-core ``fw_rate``. ``None`` when no
    winner is recorded for this machine's fingerprint.
    """
    try:
        from repro.bench.kernels import tuned_minplus_gops

        gops = tuned_minplus_gops(kernels_path)
    except Exception:
        return None
    if not gops:
        return None
    return gops * 1e9 / max(1, spec.cores)


def measured_cpu(
    spec: CpuSpec, kernels_path: Path | str | None = None
) -> CpuSpec:
    """``spec`` with ``fw_rate`` replaced by the measured kernel rate.

    Returns ``spec`` unchanged (same object) when the machine has no
    tuned winner, so callers can apply it unconditionally and still get
    the paper-band model on untuned machines.
    """
    rate = measured_fw_rate(spec, kernels_path)
    if rate is None:
        return spec
    return replace(spec, name=f"{spec.name}+measured", fw_rate=rate)
