"""Run the schedule sanitizer over the out-of-core drivers.

One entry point, :func:`sanitize_driver`, builds a sanitized device (or
two, for the multi-GPU driver), runs the named driver on a graph, and
returns the merged :class:`~repro.sanitize.hazards.HazardReport` together
with the driver's :class:`~repro.core.result.APSPResult`. This is what
``python -m repro sanitize`` and the sanitizer test-suite share.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sanitize.hazards import HazardReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.result import APSPResult
    from repro.gpu.device import DeviceSpec

__all__ = ["DRIVER_NAMES", "sanitize_driver"]

#: drivers the sanitizer knows how to exercise
DRIVER_NAMES = ("fw", "boundary", "johnson", "multi-gpu")


def sanitize_driver(
    name: str,
    graph,
    spec: "DeviceSpec",
    *,
    num_devices: int = 2,
    engine=None,
    faults=None,
    retry=None,
    **driver_kwargs,
) -> tuple[HazardReport, "APSPResult"]:
    """Run driver ``name`` under ``Device(sanitize=True)``.

    Returns ``(report, result)``; for ``multi-gpu`` the report is the merge
    of every device's individual report. Extra keyword arguments are passed
    through to the driver (e.g. ``overlap=False``). ``faults``/``retry``
    instrument the sanitized device(s) with a
    :class:`~repro.faults.FaultPlan`, proving the retry/abort recovery
    paths hazard-free (for ``multi-gpu`` the plan is attached to device 0).
    """
    from repro.gpu.device import Device

    if name not in DRIVER_NAMES:
        raise ValueError(f"unknown driver {name!r}; choose from {DRIVER_NAMES}")
    if name == "multi-gpu":
        from repro.core.multi_gpu import ooc_boundary_multi

        devices = [
            Device(spec, sanitize=True, faults=faults if d == 0 else None, retry=retry)
            for d in range(max(1, num_devices))
        ]
        result = ooc_boundary_multi(graph, devices, **driver_kwargs)
        report = devices[0].hazard_report()
        for dev in devices[1:]:
            report = report.merged(dev.hazard_report())
        return report, result

    device = Device(spec, sanitize=True, faults=faults, retry=retry)
    if name == "fw":
        from repro.core.ooc_fw import ooc_floyd_warshall

        result = ooc_floyd_warshall(graph, device, engine=engine, **driver_kwargs)
    elif name == "boundary":
        from repro.core.ooc_boundary import ooc_boundary

        result = ooc_boundary(graph, device, engine=engine, **driver_kwargs)
    else:
        from repro.core.ooc_johnson import ooc_johnson

        result = ooc_johnson(graph, device, **driver_kwargs)
    return device.hazard_report(), result
