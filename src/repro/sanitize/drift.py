"""Emitter-drift canary: dynamic trace vs ``emit_*_ir`` mirror (RPR010).

Every out-of-core / multi-device / cluster driver in this repository
ships a static ``emit_*_ir`` mirror that compiles its execution plan to
a :class:`~repro.verifyplan.ir.PlanIR`. The whole static verification
stack (residency, def-use, happens-before, bounds, timing) is only as
trustworthy as that mirror: if someone edits a driver's loop structure
and forgets the emitter, the verifier silently proves properties of a
schedule that no longer runs.

This module pins each driver to its mirror on a tiny **canary config**:
the dynamic run executes under the schedule sanitizer (or, for the
cluster, the message-tracing simulator) and its op counts are compared
with the emitted IR's. The sanitizer tracks exactly the kernel launches
and copies a device observes, so on the static side the comparable
count is *all* :class:`~repro.verifyplan.ir.KernelOp` (annotations
included — the driver launches those too) plus
:class:`~repro.verifyplan.ir.CopyOp`; the cluster compares kernels and
lowered-collective messages. Any divergence is reported by the repo
linter as rule **RPR010** on the drifted driver module.

Results are cached per process — ``python -m repro lint src/`` pays for
each canary once, a few milliseconds per driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["DRIVER_CANARIES", "DriftCheck", "check_drift", "drift_for_module"]


@dataclass(frozen=True)
class DriftCheck:
    """Outcome of one driver/emitter canary comparison."""

    driver: str
    #: op counts observed by the dynamic run
    dynamic: dict[str, int] = field(default_factory=dict)
    #: op counts of the emitted IR mirror
    static: dict[str, int] = field(default_factory=dict)
    #: non-empty when the canary could not run (e.g. infeasible plan)
    skipped: str = ""

    @property
    def ok(self) -> bool:
        if self.skipped:
            # an infeasible canary proves nothing either way, but a
            # *crashed* canary means the driver or emitter broke — that
            # is drift, not a skip
            return not self.skipped.startswith("canary failed")
        return self.dynamic == self.static

    def describe(self) -> str:
        if self.skipped:
            return f"{self.driver}: skipped ({self.skipped})"
        status = "in sync" if self.ok else "DRIFT"
        return f"{self.driver}: {status} dynamic={self.dynamic} static={self.static}"


def _ir_ops(irs) -> int:
    """Kernels + copies across IRs — what the dynamic sanitizer tracks."""
    from repro.verifyplan.ir import CopyOp, KernelOp

    return sum(
        isinstance(op, (KernelOp, CopyOp)) for ir in irs for op in ir.ops
    )


def _canary_graph():
    from repro.graphs.generators import road_like

    return road_like(220, 2.6, seed=1)


def _check_single(name: str, emit: Callable) -> DriftCheck:
    from repro.gpu.device import TEST_DEVICE
    from repro.sanitize.runner import sanitize_driver

    graph = _canary_graph()
    report, _ = sanitize_driver(name, graph, TEST_DEVICE)
    return DriftCheck(
        driver=name,
        dynamic={"ops": report.num_ops},
        static={"ops": _ir_ops(emit(graph, TEST_DEVICE))},
    )


def _check_fw() -> DriftCheck:
    from repro.core.ooc_fw import emit_fw_ir

    return _check_single(
        "fw", lambda g, spec: [emit_fw_ir(g.num_vertices, spec)]
    )


def _check_johnson() -> DriftCheck:
    from repro.core.ooc_johnson import emit_johnson_ir

    return _check_single("johnson", lambda g, spec: [emit_johnson_ir(g, spec)])


def _check_boundary() -> DriftCheck:
    from repro.core.ooc_boundary import BoundaryInfeasibleError, emit_boundary_ir

    try:
        return _check_single(
            "boundary", lambda g, spec: [emit_boundary_ir(g, spec)]
        )
    except BoundaryInfeasibleError as exc:  # pragma: no cover - canary fits
        return DriftCheck(driver="boundary", skipped=exc.detail)


def _check_multi() -> DriftCheck:
    from repro.core.multi_gpu import emit_multi_ir
    from repro.core.ooc_boundary import BoundaryInfeasibleError
    from repro.gpu.device import TEST_DEVICE
    from repro.sanitize.runner import sanitize_driver

    graph = _canary_graph()
    try:
        report, _ = sanitize_driver("multi-gpu", graph, TEST_DEVICE, num_devices=2)
    except BoundaryInfeasibleError as exc:  # pragma: no cover - canary fits
        return DriftCheck(driver="multi-gpu", skipped=exc.detail)
    return DriftCheck(
        driver="multi-gpu",
        dynamic={"ops": report.num_ops},
        static={"ops": _ir_ops(emit_multi_ir(graph, TEST_DEVICE, 2))},
    )


def _check_cluster() -> DriftCheck:
    from repro.cluster import ClusterSpec, cluster_fw, emit_cluster_ir
    from repro.graphs.generators import rmat
    from repro.verifyplan.ir import KernelOp, SendOp

    graph = rmat(96, 576, seed=3)
    cluster = ClusterSpec.make(2, 2)
    result = cluster_fw(graph, cluster)
    irs = emit_cluster_ir(96, cluster)
    return DriftCheck(
        driver="cluster-fw",
        dynamic={
            "kernels": result.num_kernels,
            "messages": result.num_messages,
        },
        static={
            "kernels": sum(
                isinstance(op, KernelOp) for ir in irs for op in ir.ops
            ),
            "messages": sum(
                isinstance(op, SendOp) for ir in irs for op in ir.ops
            ),
        },
    )


def _check_dynamic() -> DriftCheck:
    from repro.dynamic.patch import DynamicAPSP, EdgeUpdate, emit_update_ir
    from repro.gpu.device import TEST_DEVICE
    from repro.graphs.generators import rmat
    from repro.verifyplan.ir import CopyOp, KernelOp

    graph = rmat(64, 384, seed=5)
    apsp = DynamicAPSP(graph, block_size=32)
    src, dst, _w = graph.edge_array()
    result = apsp.apply([EdgeUpdate(int(src[0]), int(dst[0]), 0.0)])
    dynamic = {"kernels": 0, "copies": 0}
    static = {"kernels": 0, "copies": 0}
    for patch in result.passes:
        dynamic["kernels"] += patch.num_kernels
        dynamic["copies"] += len(patch.trace)
        ir = emit_update_ir(patch.plan, TEST_DEVICE)
        static["kernels"] += sum(isinstance(op, KernelOp) for op in ir.ops)
        static["copies"] += sum(isinstance(op, CopyOp) for op in ir.ops)
    return DriftCheck(driver="dynamic-patch", dynamic=dynamic, static=static)


#: repo-relative driver module suffix -> canary comparison
DRIVER_CANARIES: dict[str, Callable[[], DriftCheck]] = {
    "core/ooc_fw.py": _check_fw,
    "core/ooc_johnson.py": _check_johnson,
    "core/ooc_boundary.py": _check_boundary,
    "core/multi_gpu.py": _check_multi,
    "cluster/simulate.py": _check_cluster,
    "dynamic/patch.py": _check_dynamic,
}

_CACHE: dict[str, DriftCheck] = {}


def drift_for_module(rel_path: str) -> DriftCheck | None:
    """Run (or fetch the cached) canary for a driver module path.

    ``rel_path`` is the repo-relative path of the file being linted;
    returns ``None`` for modules that are not registered drivers.
    """
    rel = rel_path.replace("\\", "/")
    for suffix, check in DRIVER_CANARIES.items():
        if rel.endswith(suffix):
            if suffix not in _CACHE:
                try:
                    _CACHE[suffix] = check()
                except Exception as exc:  # canary must never crash the linter
                    _CACHE[suffix] = DriftCheck(
                        driver=suffix, skipped=f"canary failed: {exc!r}"
                    )
            return _CACHE[suffix]
    return None


def check_drift() -> list[DriftCheck]:
    """Run every registered driver canary (test-suite entry point)."""
    return [check for suffix in DRIVER_CANARIES
            if (check := drift_for_module(suffix)) is not None]
