"""Hazard records produced by the schedule sanitizer.

A :class:`Hazard` names one concrete defect in a device schedule — the
analogue of one line of ``compute-sanitizer --tool racecheck`` output: the
hazard class, the buffer involved, the stream pair, and the two operations
whose ordering (or lack of it) constitutes the bug.

A :class:`HazardReport` aggregates every hazard found in one run together
with enough context (op/buffer counts, device name) to read the report on
its own. ``report.clean`` is the pass/fail bit the CLI and CI key off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Hazard", "HazardReport", "AccessKind"]

#: access kinds recorded by the sanitizer (module-level for reuse in docs)
AccessKind = ("read", "write")


@dataclass(frozen=True)
class Hazard:
    """One detected schedule defect.

    ``kind`` is one of:

    * ``"write-read-race"`` / ``"read-write-race"`` / ``"write-write-race"``
      — two operations on *different streams* touch overlapping bytes of
      the same buffer, at least one writes, and no happens-before path
      (stream order, event edge, or host synchronisation) orders them;
    * ``"use-after-free"`` — an operation accesses a device allocation that
      was already freed when the operation was enqueued;
    * ``"uninitialized-read"`` — an operation reads device bytes that no
      transfer, fill, or kernel write is ordered before.
    """

    kind: str
    buffer: str
    streams: tuple[str, str]
    first_op: str
    second_op: str
    detail: str = ""

    def describe(self) -> str:
        """One human-readable line, ``racecheck`` style."""
        a, b = self.streams
        pair = a if a == b else f"{a} <-> {b}"
        return (
            f"{self.kind}: buffer {self.buffer!r} between streams [{pair}] "
            f"({self.first_op} vs {self.second_op})"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass
class HazardReport:
    """All hazards found in one sanitized run."""

    device: str = ""
    num_ops: int = 0
    num_buffers: int = 0
    hazards: list[Hazard] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the schedule is free of detected hazards."""
        return not self.hazards

    def kinds(self) -> list[str]:
        """Sorted distinct hazard kinds present (for quick assertions)."""
        return sorted({h.kind for h in self.hazards})

    def merged(self, other: "HazardReport") -> "HazardReport":
        """Combine two reports (multi-device runs) into a new one."""
        return HazardReport(
            device=f"{self.device}+{other.device}" if other.device else self.device,
            num_ops=self.num_ops + other.num_ops,
            num_buffers=self.num_buffers + other.num_buffers,
            hazards=[*self.hazards, *other.hazards],
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (``repro sanitize --json``)."""
        return {
            "device": self.device,
            "num_ops": self.num_ops,
            "num_buffers": self.num_buffers,
            "clean": self.clean,
            "hazards": [
                {
                    "kind": h.kind,
                    "buffer": h.buffer,
                    "streams": list(h.streams),
                    "first_op": h.first_op,
                    "second_op": h.second_op,
                    "detail": h.detail,
                }
                for h in self.hazards
            ],
        }

    def describe(self) -> str:
        """Multi-line human-readable report."""
        head = (
            f"schedule sanitizer [{self.device or 'device'}]: "
            f"{self.num_ops} ops over {self.num_buffers} buffers — "
        )
        if self.clean:
            return head + "no hazards"
        lines = [head + f"{len(self.hazards)} hazard(s)"]
        lines += [f"  {h.describe()}" for h in self.hazards]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
