"""Static analysis for the simulated GPU runtime and the repository.

Two halves (see ``docs/STATIC_ANALYSIS.md``):

* the **schedule sanitizer** (:mod:`repro.sanitize.sanitizer`) — a
  ``compute-sanitizer --tool racecheck`` analogue for the simulated
  device: it builds a happens-before graph over every stream operation,
  event edge, and host synchronisation, then reports cross-stream races
  on overlapping buffer regions, use-after-free, and uninitialized device
  reads. Enable with ``Device(sanitize=True)`` or
  ``python -m repro sanitize <driver>``;
* the **repo lint pass** (:mod:`repro.sanitize.lint`) — an AST checker
  for repository-specific contracts (engine-bypassing min-plus, float64
  operands at engine call sites, wall-clock timing in benchmarks, mutable
  default arguments, missing ``__all__``, untracked kernel launches). Run
  with ``python -m repro lint``.

The *static* counterpart of the sanitizer — proving the same schedule
properties from a symbolic plan before anything runs — lives in
:mod:`repro.verifyplan` (``python -m repro verify-plan``).
"""

from repro.sanitize.hazards import Hazard, HazardReport
from repro.sanitize.lint import Violation, format_violations, lint_file, lint_paths
from repro.sanitize.runner import DRIVER_NAMES, sanitize_driver
from repro.sanitize.sanitizer import ScheduleSanitizer

__all__ = [
    "DRIVER_NAMES",
    "Hazard",
    "HazardReport",
    "ScheduleSanitizer",
    "Violation",
    "format_violations",
    "lint_file",
    "lint_paths",
    "sanitize_driver",
]
