"""Repo-specific AST lint pass (``python -m repro lint``).

General-purpose linters cannot know this repository's contracts; these
rules encode them:

======= ==================== =====================================================
rule id name                 contract
======= ==================== =====================================================
RPR001  raw-minplus          inside ``repro/core/`` (outside ``core/backends/``),
                             min-plus products must go through the
                             :class:`~repro.core.engine.KernelEngine` — no raw
                             ``np.minimum(C, A[:, :, None] + B[None, :, :])``-style
                             broadcasts that bypass backend selection and the
                             operand contract
RPR002  float64-into-engine  engine call sites (``minplus``, ``minplus_update``,
                             ``.update``, ``.fw_inplace``) must not be fed inline
                             float64 array constructors (``np.full(...)`` without
                             ``dtype=``, or an explicit float64 dtype): a float64
                             accumulator silently falls off the fast float32 path
RPR003  wall-clock-bench     benchmark code (``repro/bench/``) must time with
                             ``time.perf_counter``, never ``time.time`` (coarse,
                             non-monotonic)
RPR004  mutable-default      no mutable default arguments (list/dict/set
                             displays or constructor calls)
RPR005  missing-all          public modules that define public top-level names
                             must declare ``__all__``
RPR006  untracked-launch     ``stream.launch(...)`` must declare its operand
                             contract via ``reads=`` and ``writes=`` keywords —
                             a launch without them is invisible to both the
                             dynamic schedule sanitizer and the static plan
                             verifier's def/use analysis
RPR007  dead-event           a ``.record(...)`` whose event no reachable
                             ``.wait(...)`` in the module consumes orders
                             nothing: either leftover scaffolding or a dropped
                             synchronisation edge (the source-level twin of the
                             plan verifier's dead-event check)
RPR008  ffi-contract         every function reference taken from a
                             ``ctypes.CDLL`` handle must declare **both**
                             ``argtypes`` and ``restype`` somewhere in the
                             module; an undeclared C entry point defaults to
                             int-sized marshalling and corrupts 64-bit
                             pointers/strides silently
RPR009  unchecked-ndarray-ffi a raw ``arr.ctypes.data`` pointer handed to a C
                             call site needs a statically-evident dtype +
                             contiguity guard on ``arr`` in the same function
                             (``_checked_operand``/``ascontiguousarray``/
                             ``np.require``) — the C kernels assume unit inner
                             stride and a specific element width
RPR010  emitter-drift        every OOC/multi/cluster driver module with an
                             ``emit_*_ir`` mirror must stay in sync with its
                             dynamic schedule: the linter replays a tiny canary
                             config through both (:mod:`repro.sanitize.drift`)
                             and flags the driver when the trace op counts
                             diverge — a drifted mirror makes every static
                             proof about that driver vacuous
RPR011  stale-dist-mutation  solved state is immutable outside its owner: no
                             in-place subscript stores to a ``.dist`` matrix
                             outside ``repro/dynamic/`` (route mutations
                             through :class:`repro.dynamic.DynamicAPSP` so the
                             patch is scheduled, proven O(n²), and the cache
                             fingerprint rotates), none to the frozen CSR
                             arrays ``.weights``/``.indptr``/``.indices``
                             anywhere (rebuild via ``apply_edge_updates``),
                             and none to a result's ``.store.data`` outside
                             ``repro/core/`` — a silent in-place write leaves
                             every downstream consumer (caches, selectors,
                             checkpoints) holding stale answers
======= ==================== =====================================================

Run over paths with :func:`lint_paths`; each finding is a
:class:`Violation` carrying ``rule``, ``file``, ``line`` and ``col``.
Fix the code, don't suppress the rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = ["Violation", "lint_file", "lint_paths", "format_violations", "RULES"]

#: rule id -> (name, summary) — the lint CLI's ``--list-rules`` output
RULES: dict[str, tuple[str, str]] = {
    "RPR001": ("raw-minplus", "raw broadcast min-plus bypassing the KernelEngine in core/"),
    "RPR002": ("float64-into-engine", "float64 array constructor fed to an engine call site"),
    "RPR003": ("wall-clock-bench", "time.time() used in bench/ (use time.perf_counter)"),
    "RPR004": ("mutable-default", "mutable default argument"),
    "RPR005": ("missing-all", "public module defines public names but no __all__"),
    "RPR006": ("untracked-launch", "stream.launch() without reads=/writes= operand sets"),
    "RPR007": ("dead-event", "record() whose event no reachable wait() consumes"),
    "RPR008": ("ffi-contract", "CDLL function used without declared argtypes/restype"),
    "RPR009": ("unchecked-ndarray-ffi", "ndarray pointer reaches C without dtype/contiguity guard"),
    "RPR010": ("emitter-drift", "emit_*_ir mirror op counts diverge from the dynamic trace"),
    "RPR011": ("stale-dist-mutation", "in-place write to solved dist/CSR state outside its owner"),
}

#: engine entry points whose operands RPR002 inspects
_ENGINE_CALLEES = {"minplus", "minplus_update", "update", "fw_inplace"}

#: numpy constructors that default to float64 when dtype is omitted
_F64_DEFAULT_CTORS = ("full", "zeros", "ones", "empty")

_MUTABLE_CTORS = {"list", "dict", "set"}


@dataclass(frozen=True)
class Violation:
    """One lint finding at ``file:line:col``."""

    rule: str
    name: str
    file: str
    line: int
    col: int
    message: str

    def describe(self) -> str:
        """``file:line:col: RPRnnn name: message`` — editor-clickable."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.name}: {self.message}"


def _is_np_attr(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attr
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _subscript_has_none(node: ast.AST) -> bool:
    """True for ``x[..., None, ...]``-style new-axis subscripts."""
    if not isinstance(node, ast.Subscript):
        return False
    idx = node.slice
    elts = idx.elts if isinstance(idx, ast.Tuple) else [idx]
    return any(isinstance(e, ast.Constant) and e.value is None for e in elts)


def _is_broadcast_minplus_arg(node: ast.AST) -> bool:
    """``A[:, :, None] + B[None, :, :]`` (or any Add of subscript views)."""
    if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Add):
        return False
    return _subscript_has_none(node.left) or _subscript_has_none(node.right)


def _is_float64_dtype(node: ast.AST) -> bool:
    if _is_np_attr(node, "float64"):
        return True
    if isinstance(node, ast.Constant) and node.value in ("float64", "f8"):
        return True
    return isinstance(node, ast.Name) and node.id == "float"


def _constructs_float64(node: ast.AST) -> bool:
    """An inline array constructor whose result dtype is float64."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    ctor = func.attr if isinstance(func, ast.Attribute) else None
    if ctor is None or not _is_np_attr(func, ctor):
        return False
    dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
    if dtype_kw is not None:
        return _is_float64_dtype(dtype_kw)
    # dtype omitted: np.full/zeros/ones/empty default to float64
    return ctor in _F64_DEFAULT_CTORS


class _Checker(ast.NodeVisitor):
    """Single-pass visitor applying every location-scoped rule."""

    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.violations: list[Violation] = []
        self.in_core = "/core/" in f"/{self.rel}" and "/backends/" not in self.rel
        self.in_bench = "/bench/" in f"/{self.rel}"
        self.in_dynamic = "/dynamic/" in f"/{self.rel}"
        self.in_core_pkg = "/core/" in f"/{self.rel}"

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        name, _ = RULES[rule]
        self.violations.append(
            Violation(
                rule=rule,
                name=name,
                file=str(self.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    # -- RPR001 / RPR002 / RPR003 --------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.in_core and _is_np_attr(node.func, "minimum"):
            if any(_is_broadcast_minplus_arg(arg) for arg in node.args):
                self._flag(
                    "RPR001", node,
                    "raw broadcast min-plus product; route it through the "
                    "KernelEngine (repro.core.engine) instead",
                )
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee in _ENGINE_CALLEES:
            for arg in node.args:
                if _constructs_float64(arg):
                    self._flag(
                        "RPR002", arg,
                        f"float64 array constructed inline at {callee}() call "
                        "site; pass dtype=DIST_DTYPE (float32) so the operand "
                        "stays on the fast path",
                    )
        if isinstance(node.func, ast.Attribute) and node.func.attr == "launch":
            kw_names = {kw.arg for kw in node.keywords}
            # a **kwargs splat (arg is None) may carry the operand sets
            if None not in kw_names:
                missing = [k for k in ("reads", "writes") if k not in kw_names]
                if missing:
                    self._flag(
                        "RPR006", node,
                        f"launch() without {'/'.join(f'{k}=' for k in missing)}"
                        " operand set(s); declare what the kernel touches so "
                        "the sanitizer and plan verifier can track it",
                    )
        func = node.func
        if (
            self.in_bench
            and isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self._flag(
                "RPR003", node,
                "time.time() in benchmark code; use time.perf_counter()",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_bench and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self._flag(
                        "RPR003", node,
                        "wall-clock `from time import time` in benchmark code; "
                        "import perf_counter instead",
                    )
        self.generic_visit(node)

    # -- RPR004 --------------------------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            )
            if mutable:
                self._flag(
                    "RPR004", default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- RPR011 --------------------------------------------------------
    #: CSR arrays frozen by contract — no in-place element stores anywhere
    _FROZEN_CSR_ATTRS = ("weights", "indptr", "indices")

    def _check_solved_store(self, target: ast.AST) -> None:
        """Flag ``<obj>.dist[...] = …`` / ``<obj>.weights[...] = …``-style
        in-place stores to solved or frozen state (see RPR011)."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_solved_store(elt)
            return
        if not isinstance(target, ast.Subscript) or not isinstance(
            target.value, ast.Attribute
        ):
            return
        attr = target.value.attr
        if attr in self._FROZEN_CSR_ATTRS and not self.in_dynamic:
            self._flag(
                "RPR011", target,
                f"in-place store to frozen CSR array .{attr}[...]; graphs "
                "are immutable — build the mutated graph with "
                "repro.dynamic.apply_edge_updates instead",
            )
        elif attr == "dist" and not self.in_dynamic:
            self._flag(
                "RPR011", target,
                "in-place store to a solved .dist matrix outside the "
                "repro.dynamic API; the write bypasses the verified patch "
                "schedule and leaves content-hash caches stale — go "
                "through repro.dynamic.DynamicAPSP.apply",
            )
        elif (
            attr == "data"
            and isinstance(target.value.value, ast.Attribute)
            and target.value.value.attr == "store"
            and not self.in_core_pkg
        ):
            self._flag(
                "RPR011", target,
                "in-place store to a result's .store.data outside "
                "repro/core/; solved stores are immutable once returned",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_solved_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_solved_store(node.target)
        self.generic_visit(node)


def _base_name(node: ast.AST) -> str | None:
    """The root ``Name`` under nested subscripts (``a[i][j]`` -> ``a``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _check_dead_events(tree: ast.Module, checker: _Checker) -> None:
    """RPR007 — module-wide: every ``.record(...)`` needs a consumer.

    A record call is *live* when its result is consumed by a ``.wait()``
    (directly, through a variable/container a wait reads, or via the
    event object it was given), or when it escapes local analysis
    (returned, stored on an attribute, passed to another call). Only the
    provably dead shapes are flagged: a bare expression statement that
    discards the event, and an assignment to a name no wait in the
    module ever references.
    """
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    wait_names: set[str] = set()
    records: list[ast.Call] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr == "wait":
            for arg in node.args:
                base = _base_name(arg)
                if base is not None:
                    wait_names.add(base)
        elif node.func.attr == "record":
            records.append(node)
    for rc in records:
        # the event object handed to record() is itself waited on somewhere
        if any(_base_name(arg) in wait_names for arg in rc.args
               if _base_name(arg) is not None):
            continue
        parent = parents.get(rc)
        dead = False
        if isinstance(parent, ast.Expr):
            dead = True  # result discarded — nothing can ever wait
        elif isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets if isinstance(parent, ast.Assign) else [parent.target]
            )
            plain = [t for t in targets if isinstance(t, (ast.Name, ast.Subscript))]
            if len(plain) == len(targets) and not any(
                _base_name(t) in wait_names for t in plain
            ):
                dead = True  # bound to name(s) no wait() ever reads
        if dead:
            checker._flag(
                "RPR007", rc,
                "record() whose event no reachable wait() consumes; the "
                "edge orders nothing — wait on it, or drop the record",
            )


def _dotted(node: ast.AST) -> str | None:
    """Render a Name/Attribute chain as ``a.b.c`` (None when not a chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_cdll_ctor(node: ast.AST) -> bool:
    """``ctypes.CDLL(...)`` / ``CDLL(...)`` / ``ctypes.cdll.LoadLibrary(...)``."""
    if not isinstance(node, ast.Call):
        return False
    name = _dotted(node.func)
    return name in ("CDLL", "ctypes.CDLL", "cdll.LoadLibrary", "ctypes.cdll.LoadLibrary")


def _is_cdll_annotation(node: ast.AST | None) -> bool:
    return node is not None and _dotted(node) in ("CDLL", "ctypes.CDLL")


def _check_ffi_contracts(tree: ast.Module, checker: _Checker) -> None:
    """RPR008 — module-wide: CDLL function refs need argtypes *and* restype.

    Tracks CDLL handles (``lib = ctypes.CDLL(...)`` and parameters
    annotated ``ctypes.CDLL``), the function references taken from them
    (``self.f = lib.foo``), and the contract assignments
    (``self.f.argtypes = …`` / ``.restype = …``). A reference — or a
    direct ``lib.foo(...)`` call — with either half of the contract
    missing module-wide is flagged.
    """
    cdll_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if value is not None and _is_cdll_ctor(value):
                for t in targets:
                    name = _dotted(t)
                    if name is not None:
                        cdll_names.add(name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in node.args.args + node.args.kwonlyargs:
                if _is_cdll_annotation(arg.annotation):
                    cdll_names.add(arg.arg)
    if not cdll_names:
        return
    # refs: dotted target -> (line, col, C symbol); declared: target -> halves
    refs: dict[str, tuple[int, int, str]] = {}
    declared: dict[str, set[str]] = {}
    direct_calls: list[tuple[str, ast.Call]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and _dotted(value.value) in cdll_names
            ):
                for t in node.targets:
                    name = _dotted(t)
                    if name is not None:
                        refs.setdefault(name, (node.lineno, node.col_offset, value.attr))
            for t in node.targets:
                if isinstance(t, ast.Attribute) and t.attr in ("argtypes", "restype"):
                    owner = _dotted(t.value)
                    if owner is not None:
                        declared.setdefault(owner, set()).add(t.attr)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = _dotted(node.func.value)
            if owner in cdll_names:
                direct_calls.append((f"{owner}.{node.func.attr}", node))
    for target, (line, col, symbol) in refs.items():
        missing = {"argtypes", "restype"} - declared.get(target, set())
        if missing:
            checker.violations.append(
                Violation(
                    rule="RPR008", name=RULES["RPR008"][0],
                    file=str(checker.path), line=line, col=col,
                    message=f"C function {symbol!r} bound to {target} without "
                    f"{' or '.join(sorted(missing))}; an undeclared FFI "
                    "contract truncates 64-bit pointers/strides",
                )
            )
    for qualified, call in direct_calls:
        if {"argtypes", "restype"} - declared.get(qualified, set()):
            checker._flag(
                "RPR008", call,
                f"direct call through {qualified} without declared "
                "argtypes/restype",
            )


_NDARRAY_GUARDS = {"_checked_operand", "ascontiguousarray", "require"}


def _check_ndarray_ffi(tree: ast.Module, checker: _Checker) -> None:
    """RPR009 — per function: ``x.ctypes.data`` call args need a guard on x.

    Every ``x.ctypes.data`` occurrence counts as a raw pointer escaping
    to C (directly as a call argument, or packed into an args tuple).
    The guard must be statically evident in the same function: ``x``
    passed to ``_checked_operand``/``np.ascontiguousarray``/
    ``np.require`` (any of which pins dtype and layout before the raw
    pointer crosses the FFI boundary).
    """
    funcs = [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    ]
    covered: set[ast.AST] = set()
    for fn in funcs:
        for inner in ast.walk(fn):
            if inner is not fn and isinstance(
                inner, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                covered.add(inner)
    for fn in funcs:
        if fn in covered:
            continue  # nested defs are walked with their own scope below
        _check_ndarray_ffi_scope(fn, checker)


def _check_ndarray_ffi_scope(fn: ast.AST, checker: _Checker) -> None:
    guarded: set[str] = set()
    raw_uses: list[tuple[str, ast.Attribute]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = node.func
            cname = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if cname in _NDARRAY_GUARDS:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        guarded.add(arg.id)
        use = _raw_pointer_use(node)
        if use is not None:
            raw_uses.append(use)
    for owner, node in raw_uses:
        if owner not in guarded:
            checker._flag(
                "RPR009", node,
                f"{owner}.ctypes.data crosses the FFI boundary without a "
                f"dtype/contiguity guard on {owner!r} in this function "
                "(route it through _checked_operand or np.ascontiguousarray)",
            )


def _raw_pointer_use(node: ast.AST) -> tuple[str, ast.Attribute] | None:
    """Match ``<name>.ctypes.data`` and return (name, node)."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "data"
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "ctypes"
        and isinstance(node.value.value, ast.Name)
    ):
        return node.value.value.id, node
    return None


def _module_public_names(tree: ast.Module) -> list[str]:
    """Top-level public defs/classes/assignments (imports excluded)."""
    names: list[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if not node.name.startswith("_"):
                names.append(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    names.append(target.id)
    return names


def _declares_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return True
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == "__all__"
        ):
            return True
    return False


def lint_file(path: Path, root: Path | None = None) -> list[Violation]:
    """Lint one python file; returns its violations (possibly empty)."""
    path = Path(path)
    try:
        rel = str(path.resolve().relative_to((root or Path.cwd()).resolve()))
    except ValueError:
        rel = str(path)
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="RPR000", name="syntax-error", file=str(path),
                line=exc.lineno or 1, col=exc.offset or 0,
                message=str(exc.msg),
            )
        ]
    checker = _Checker(path, rel)
    checker.visit(tree)
    violations = checker.violations
    # RPR007 needs module-wide wait()-reachability, not a single-node view
    _check_dead_events(tree, checker)
    # RPR008/RPR009 — module-wide FFI contract + per-function operand guards
    _check_ffi_contracts(tree, checker)
    _check_ndarray_ffi(tree, checker)
    # RPR005 is module-shaped, not node-shaped
    module_name = path.stem
    exempt = module_name.startswith("_") and module_name != "__init__"
    if not exempt and _module_public_names(tree) and not _declares_all(tree):
        checker._flag("RPR005", tree.body[0] if tree.body else tree,
                      "module defines public names but no __all__")
    # RPR010 is semantic, not syntactic: registered driver modules are
    # replayed on a canary config and compared against their IR mirrors
    from repro.sanitize.drift import drift_for_module

    drift = drift_for_module(rel)
    if drift is not None and not drift.ok:
        checker._flag("RPR010", tree.body[0] if tree.body else tree,
                      f"emit_*_ir mirror out of sync — {drift.describe()}")
    return violations


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[Path], root: Path | None = None) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    violations: list[Violation] = []
    for path in _iter_py_files(paths):
        violations.extend(lint_file(path, root=root))
    return violations


def format_violations(violations: list[Violation]) -> str:
    """Render findings one per line, stable order."""
    ordered = sorted(violations, key=lambda v: (v.file, v.line, v.col, v.rule))
    return "\n".join(v.describe() for v in ordered)
