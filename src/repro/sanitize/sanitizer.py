"""Happens-before race detection for the simulated GPU runtime.

Real GPU stacks catch missing-synchronisation bugs with
``compute-sanitizer --tool racecheck``; the simulated runtime has all the
information needed to do the same accounting statically. The
:class:`ScheduleSanitizer` observes every operation the runtime performs —
kernel launches (with their declared read/write sets), H2D/D2H copies,
event records and waits, host synchronisation, allocation and free — and
maintains a **vector clock** per stream:

* consecutive operations on one stream are ordered (program order);
* ``Stream.record(event)`` snapshots the recording stream's clock onto the
  event; ``Stream.wait(event)`` joins that snapshot into the waiting
  stream's clock (the cross-stream edge double buffering relies on);
* a *synchronous* copy or an explicit ``synchronize()`` joins the finished
  work into the **host clock**, which every subsequently *enqueued*
  operation inherits (``cudaMemcpy`` semantics);
* ``DeviceArray.free`` is treated like legacy ``cudaFree``: it
  synchronises the whole device before the memory is reused, and any
  access enqueued after it is a use-after-free.

Operation ``a`` happens-before ``b`` iff ``b``'s clock contains ``a``'s
index on ``a``'s stream. Two operations on different streams that touch
overlapping bytes of one buffer, at least one writing, with *no*
happens-before path either way, constitute a race — exactly the hazard a
missing ``Event`` edge opens up in the double-buffered drivers.

Byte overlap between numpy views is decided with ``np.shares_memory``
(falling back to the conservative bounds check if the exact problem is too
hard), so disjoint slices of one accumulation buffer do not alias.

Enable with ``Device(sanitize=True)``; collect results with
:meth:`ScheduleSanitizer.report`. See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

from repro.sanitize.hazards import Hazard, HazardReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.memory import DeviceArray, HostBuffer
    from repro.gpu.stream import Event, Stream

__all__ = ["ScheduleSanitizer", "Access", "TrackedOp"]

#: anything the runtime may hand the sanitizer as a buffer operand
Operand = Union["DeviceArray", "HostBuffer", np.ndarray]

#: cap on exact ``np.shares_memory`` work before falling back to bounds
_SHARE_WORK = 1_000_000

#: cap on reported race hazards per buffer (the first few name the bug;
#: the rest are echoes of the same missing edge)
_MAX_PER_BUFFER = 8

Clock = dict[int, int]


def _join(into: Clock, other: Clock) -> None:
    for key, idx in other.items():
        if into.get(key, -1) < idx:
            into[key] = idx


def _as_ndarray(operand: Operand) -> np.ndarray:
    if isinstance(operand, np.ndarray):
        return operand
    # DeviceArray / HostBuffer wrap their storage in .data
    data = getattr(operand, "data", None)
    if not isinstance(data, np.ndarray):
        raise TypeError(f"cannot track operand of type {type(operand).__name__}")
    return data


def _root(arr: np.ndarray) -> np.ndarray:
    while isinstance(arr.base, np.ndarray):
        arr = arr.base
    return arr


def _overlaps(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact-where-feasible byte overlap between two views."""
    if a.size == 0 or b.size == 0:
        return False
    if not np.may_share_memory(a, b):
        return False
    try:
        return bool(np.shares_memory(a, b, max_work=_SHARE_WORK))
    except Exception:  # exact solve too hard: stay conservative
        return True


@dataclass
class TrackedOp:
    """One observed operation with its happens-before clock."""

    seq: int  # global enqueue order
    stream_key: int
    stream: str  # display name
    name: str
    index: int  # position on its stream
    clock: Clock

    def label(self) -> str:
        """Short ``#seq:name@stream`` identifier for hazard messages."""
        return f"#{self.seq}:{self.name}@{self.stream}"


@dataclass
class Access:
    """One read or write of a buffer region by a :class:`TrackedOp`."""

    op: TrackedOp
    kind: str  # "read" | "write"
    view: np.ndarray


@dataclass
class _BufferInfo:
    """Lifecycle record of one tracked buffer (device or host)."""

    name: str
    device: bool
    prefilled: bool = False
    freed_seq: int | None = None
    accesses: list[Access] = field(default_factory=list)


class ScheduleSanitizer:
    """Observes one :class:`~repro.gpu.device.Device`'s schedule and finds
    cross-stream hazards (see module docstring for the model)."""

    def __init__(self, device_name: str = "") -> None:
        self.device_name = device_name
        self._buffers: dict[int, _BufferInfo] = {}
        self._stream_clock: dict[int, Clock] = {}
        self._stream_index: dict[int, int] = {}
        self._stream_name: dict[int, str] = {}
        self._host_clock: Clock = {}
        self._seq = 0
        self._eager_hazards: list[Hazard] = []

    # ------------------------------------------------------------------
    # Allocation lifecycle (called by DeviceMemory)
    # ------------------------------------------------------------------
    def on_alloc(self, array: "DeviceArray", *, prefilled: bool = False) -> None:
        """Register a fresh device allocation."""
        root = _root(array.data)
        self._buffers[id(root)] = _BufferInfo(
            name=array.name or f"device[{array.data.shape}]",
            device=True,
            prefilled=prefilled,
        )

    def on_free(self, array: "DeviceArray") -> None:
        """Model legacy ``cudaFree``: device-wide sync, then the bytes die."""
        for clock in self._stream_clock.values():
            _join(self._host_clock, clock)
        info = self._buffers.get(id(_root(array.data)))
        if info is not None:
            info.freed_seq = self._seq

    # ------------------------------------------------------------------
    # Stream operations (called by Stream)
    # ------------------------------------------------------------------
    def _stream_key(self, stream: "Stream") -> int:
        key = id(stream)
        if key not in self._stream_clock:
            self._stream_clock[key] = {}
            self._stream_index[key] = 0
            self._stream_name[key] = stream.name
        return key

    def _new_op(self, stream: "Stream", name: str) -> TrackedOp:
        key = self._stream_key(stream)
        clock = self._stream_clock[key]
        _join(clock, self._host_clock)  # enqueued after host-known work
        index = self._stream_index[key]
        self._stream_index[key] = index + 1
        clock[key] = index
        op = TrackedOp(
            seq=self._seq,
            stream_key=key,
            stream=self._stream_name[key],
            name=name,
            index=index,
            clock=dict(clock),
        )
        self._seq += 1
        return op

    def _record_access(self, op: TrackedOp, kind: str, operand: Operand) -> None:
        view = _as_ndarray(operand)
        if view.size == 0:
            return  # touches no bytes (empty boundary sets, zero-size tiles)
        root = _root(view)
        info = self._buffers.get(id(root))
        if info is None:
            # host memory is registered lazily on first sight
            info = _BufferInfo(name=f"host[{root.shape}]", device=False)
            self._buffers[id(root)] = info
        if info.freed_seq is not None and op.seq >= info.freed_seq:
            self._eager_hazards.append(
                Hazard(
                    kind="use-after-free",
                    buffer=info.name,
                    streams=(op.stream, op.stream),
                    first_op=f"free@#{info.freed_seq}",
                    second_op=op.label(),
                    detail="operation enqueued after the allocation was freed",
                )
            )
            return
        info.accesses.append(Access(op=op, kind=kind, view=view))

    def on_kernel(
        self,
        stream: "Stream",
        name: str,
        reads: Iterable[Operand] = (),
        writes: Iterable[Operand] = (),
    ) -> None:
        """Record a kernel launch with its declared access sets."""
        op = self._new_op(stream, name)
        for operand in reads:
            self._record_access(op, "read", operand)
        for operand in writes:
            self._record_access(op, "write", operand)

    def on_copy(
        self,
        stream: "Stream",
        name: str,
        dst: Operand,
        src: Operand,
        *,
        sync: bool,
    ) -> None:
        """Record one copy: ``src`` is read, ``dst`` is written."""
        op = self._new_op(stream, name)
        self._record_access(op, "read", src)
        self._record_access(op, "write", dst)
        if sync:
            _join(self._host_clock, op.clock)

    def on_record(self, stream: "Stream", event: "Event") -> None:
        """Snapshot the recording stream's clock onto the event."""
        key = self._stream_key(stream)
        event._clock = dict(self._stream_clock[key])

    def on_wait(self, stream: "Stream", event: "Event") -> None:
        """Join the event's snapshot into the waiting stream's clock."""
        key = self._stream_key(stream)
        snapshot: Clock | None = getattr(event, "_clock", None)
        if snapshot:
            _join(self._stream_clock[key], snapshot)

    def on_stream_sync(self, stream: "Stream") -> None:
        """The host blocked on one stream: its work is host-known now."""
        key = self._stream_key(stream)
        _join(self._host_clock, self._stream_clock[key])

    def on_device_sync(self) -> None:
        """The host blocked on the whole device."""
        for clock in self._stream_clock.values():
            _join(self._host_clock, clock)

    def reset_schedule(self) -> None:
        """Forget the recorded schedule but keep live allocations.

        Mirrors :meth:`repro.gpu.device.Device.reset_clock`, which the
        drivers call between calibration and measured runs.
        """
        self._stream_clock.clear()
        self._stream_index.clear()
        self._stream_name.clear()
        self._host_clock = {}
        self._seq = 0
        self._eager_hazards = []
        for info in self._buffers.values():
            info.accesses = []

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    @staticmethod
    def _happens_before(a: TrackedOp, b: TrackedOp) -> bool:
        return b.clock.get(a.stream_key, -1) >= a.index

    def _scan_races(self, info: _BufferInfo, hazards: list[Hazard]) -> None:
        found = 0
        seen: set[tuple[str, str, str, str, str]] = set()
        accesses = info.accesses
        for i, first in enumerate(accesses):
            for second in accesses[i + 1 :]:
                if first.op.stream_key == second.op.stream_key:
                    continue
                if first.kind == "read" and second.kind == "read":
                    continue
                if self._happens_before(first.op, second.op):
                    continue
                if self._happens_before(second.op, first.op):
                    continue
                if not _overlaps(first.view, second.view):
                    continue
                kind = f"{first.kind}-{second.kind}-race"
                dedup = (
                    kind, first.op.stream, second.op.stream,
                    first.op.name, second.op.name,
                )
                if dedup in seen:
                    continue
                seen.add(dedup)
                hazards.append(
                    Hazard(
                        kind=kind,
                        buffer=info.name,
                        streams=(first.op.stream, second.op.stream),
                        first_op=first.op.label(),
                        second_op=second.op.label(),
                        detail="no happens-before edge orders these accesses",
                    )
                )
                found += 1
                if found >= _MAX_PER_BUFFER:
                    return

    def _scan_uninitialized(self, info: _BufferInfo, hazards: list[Hazard]) -> None:
        if not info.device or info.prefilled:
            return
        writes = [a for a in info.accesses if a.kind == "write"]
        for access in info.accesses:
            if access.kind != "read":
                continue
            covered = any(
                self._happens_before(w.op, access.op) and _overlaps(w.view, access.view)
                for w in writes
                if w.op is not access.op
            )
            if not covered:
                hazards.append(
                    Hazard(
                        kind="uninitialized-read",
                        buffer=info.name,
                        streams=(access.op.stream, access.op.stream),
                        first_op="<no prior write>",
                        second_op=access.op.label(),
                        detail="no transfer or kernel write is ordered before this read",
                    )
                )
                return  # one per buffer names the bug

    def report(self) -> HazardReport:
        """Scan the recorded schedule and return the findings."""
        hazards: list[Hazard] = list(self._eager_hazards)
        for info in self._buffers.values():
            if len(info.accesses) >= 2:
                self._scan_races(info, hazards)
            self._scan_uninitialized(info, hazards)
        hazards.sort(key=lambda h: h.second_op)
        return HazardReport(
            device=self.device_name,
            num_ops=self._seq,
            num_buffers=len(self._buffers),
            hazards=hazards,
        )
