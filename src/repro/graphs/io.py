"""Graph file I/O: Matrix Market (SuiteSparse's format) and edge lists.

The paper's evaluation graphs come from the SuiteSparse Matrix Collection,
which distributes ``.mtx`` Matrix Market files. We implement the coordinate
format reader/writer from scratch (pattern, integer, and real fields;
``general`` and ``symmetric`` symmetry) so downloaded SuiteSparse matrices
can be loaded directly.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "read_matrix_market",
    "write_edge_list",
    "write_matrix_market",
]


def _open_text(path: str | Path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def _data_lines(handle: IO[str]) -> Iterator[str]:
    for line in handle:
        line = line.strip()
        if line and not line.startswith("%"):
            yield line


def read_matrix_market(path: str | Path, *, name: str = "") -> CSRGraph:
    """Read a Matrix Market coordinate file as a weighted graph.

    Supports ``matrix coordinate {real,integer,pattern} {general,symmetric,
    skew-symmetric}``. Pattern entries get weight 1; explicit values are
    taken as edge weights with their absolute value (SuiteSparse structural
    matrices have signed entries, but shortest-path weights must be
    non-negative — the paper does the same when treating these matrices as
    graphs). Symmetric storage is expanded to both directions.
    """
    path = Path(path)
    with _open_text(path, "r") as fh:
        header = fh.readline().strip().lower().split()
        if len(header) < 5 or header[0] not in ("%%matrixmarket",):
            raise ValueError(f"{path}: not a Matrix Market file")
        _, obj, fmt, field, symmetry = header[:5]
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError(f"{path}: only 'matrix coordinate' supported, got {obj} {fmt}")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        lines = _data_lines(fh)
        try:
            dims = next(lines)
        except StopIteration:
            raise ValueError(f"{path}: missing size line") from None
        nrows, ncols, nnz = (int(tok) for tok in dims.split()[:3])
        if nrows != ncols:
            raise ValueError(f"{path}: adjacency matrix must be square ({nrows}x{ncols})")

        src = np.empty(nnz, dtype=np.int64)
        dst = np.empty(nnz, dtype=np.int64)
        w = np.ones(nnz, dtype=np.float64)
        has_value = field != "pattern"
        count = 0
        for line in lines:
            if count >= nnz:
                raise ValueError(f"{path}: more entries than the declared nnz={nnz}")
            parts = line.split()
            src[count] = int(parts[0]) - 1
            dst[count] = int(parts[1]) - 1
            if has_value:
                w[count] = abs(float(parts[2]))
            count += 1
        if count != nnz:
            raise ValueError(f"{path}: expected {nnz} entries, got {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off = src != dst
        src, dst, w = (
            np.concatenate([src, dst[off]]),
            np.concatenate([dst, src[off]]),
            np.concatenate([w, w[off]]),
        )
    return CSRGraph.from_edges(nrows, src, dst, w, name=name or path.stem)


def write_matrix_market(graph: CSRGraph, path: str | Path, *, comment: str = "") -> None:
    """Write the graph as ``matrix coordinate real general`` (1-based)."""
    src, dst, w = graph.edge_array()
    path = Path(path)
    with _open_text(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        n = graph.num_vertices
        fh.write(f"{n} {n} {graph.num_edges}\n")
        for s, d, wt in zip(src, dst, w):
            fh.write(f"{s + 1} {d + 1} {wt:.17g}\n")


def read_edge_list(
    path: str | Path,
    *,
    num_vertices: int | None = None,
    default_weight: float = 1.0,
    name: str = "",
) -> CSRGraph:
    """Read a whitespace-separated ``src dst [weight]`` file (0-based ids)."""
    srcs: list[int] = []
    dsts: list[int] = []
    ws: list[float] = []
    with _open_text(path, "r") as fh:
        for line in _data_lines(fh):
            if line.startswith("#"):
                continue
            parts = line.split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            ws.append(float(parts[2]) if len(parts) > 2 else default_weight)
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    n = num_vertices if num_vertices is not None else (int(max(src.max(initial=-1), dst.max(initial=-1))) + 1 if src.size else 0)
    return CSRGraph.from_edges(n, src, dst, np.asarray(ws), name=name or Path(path).stem)


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write ``src dst weight`` lines (0-based ids)."""
    src, dst, w = graph.edge_array()
    with _open_text(path, "w") as fh:
        fh.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for s, d, wt in zip(src, dst, w):
            fh.write(f"{s} {d} {wt:.17g}\n")
