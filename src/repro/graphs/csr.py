"""Weighted directed graph in compressed sparse row (CSR) form.

The CSR layout is the one the paper's GPU kernels consume: an ``indptr``
array of length ``n + 1``, an ``indices`` array of the out-neighbour ids, and
a parallel ``weights`` array. All APSP code in :mod:`repro.core` and all SSSP
code in :mod:`repro.sssp` operate directly on these three arrays.

Distances use ``float64`` with ``numpy.inf`` for "no path" throughout the
library (the paper uses ``int`` + ``atomicMin`` on the GPU; with vectorised
numpy there is no atomicity concern and floats avoid sentinel arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable weighted directed graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of shape ``(n + 1,)``; row ``u``'s out-edges live at
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        ``int64`` array of the head vertex of each edge.
    weights:
        ``float64`` array of non-negative edge weights, parallel to
        ``indices``.
    name:
        Optional label used by the benchmark harness and ``repr``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise ValueError("indptr, indices, weights must be 1-D arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indices.shape != weights.shape:
            raise ValueError("indices and weights must have the same length")
        if indptr[-1] != indices.size:
            raise ValueError("indptr[-1] must equal the number of edges")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge head out of range")
        if weights.size and weights.min() < 0:
            raise ValueError("edge weights must be non-negative")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self.indices.size

    @property
    def density(self) -> float:
        """``m / n²`` — the paper's density measure (Section IV-C)."""
        n = self.num_vertices
        return self.num_edges / float(n * n) if n else 0.0

    def out_degree(self, u: int | None = None) -> np.ndarray | int:
        """Out-degree of vertex ``u``, or the full degree array if ``None``."""
        if u is None:
            return np.diff(self.indptr)
        return int(self.indptr[u + 1] - self.indptr[u])

    def neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of (head vertices, weights) of ``u``'s out-edges."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays in CSR order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr))
        return src, self.indices.copy(), self.weights.copy()

    @property
    def nbytes(self) -> int:
        """Bytes needed to hold the CSR arrays (the paper's graph size ``S``)."""
        return self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        *,
        name: str = "",
        dedupe: str = "min",
    ) -> "CSRGraph":
        """Build a graph from parallel edge arrays.

        Duplicate ``(src, dst)`` pairs are merged; ``dedupe`` selects the kept
        weight (``"min"``, ``"first"``, or ``"sum"``). Self-loops are dropped
        (they never participate in a shortest path with non-negative
        weights).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (src.shape == dst.shape == weights.shape):
            raise ValueError("src, dst, weights must have equal length")
        if src.size:
            if src.min() < 0 or src.max() >= num_vertices:
                raise ValueError("src vertex out of range")
            if dst.min() < 0 or dst.max() >= num_vertices:
                raise ValueError("dst vertex out of range")
        keep = src != dst
        src, dst, weights = src[keep], dst[keep], weights[keep]

        if src.size:
            key = src * np.int64(num_vertices) + dst
            if dedupe == "min":
                order = np.lexsort((weights, key))
            else:
                order = np.argsort(key, kind="stable")
            key, src, dst, weights = key[order], src[order], dst[order], weights[order]
            first = np.ones(key.size, dtype=bool)
            first[1:] = key[1:] != key[:-1]
            if dedupe == "sum":
                group = np.cumsum(first) - 1
                weights = np.bincount(group, weights=weights)
                src, dst = src[first], dst[first]
            else:
                src, dst, weights = src[first], dst[first], weights[first]

        counts = np.bincount(src, minlength=num_vertices) if src.size else np.zeros(num_vertices, dtype=np.int64)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, weights, name=name)

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix | sp.sparray, *, name: str = "") -> "CSRGraph":
        """Build from any scipy sparse matrix (converted to CSR)."""
        csr = sp.csr_matrix(mat)
        if csr.shape[0] != csr.shape[1]:
            raise ValueError("adjacency matrix must be square")
        csr.sort_indices()
        src = np.repeat(np.arange(csr.shape[0], dtype=np.int64), np.diff(csr.indptr))
        return cls.from_edges(
            csr.shape[0], src, csr.indices.astype(np.int64), np.abs(csr.data), name=name
        )

    def to_scipy(self) -> sp.csr_matrix:
        """Convert to a ``scipy.sparse.csr_matrix`` (weights as data)."""
        n = self.num_vertices
        return sp.csr_matrix((self.weights, self.indices, self.indptr), shape=(n, n))

    def to_dense(self, dtype=np.float64) -> np.ndarray:
        """Dense weight matrix with ``inf`` off-edges and ``0`` diagonal.

        This is the initial ``dist`` matrix of the Floyd–Warshall family.
        """
        n = self.num_vertices
        dist = np.full((n, n), np.inf, dtype=dtype)
        src, dst, w = self.edge_array()
        # CSRGraph dedupes to the min weight already, but parallel edges can
        # still reach here via subgraph extraction; keep the min defensively.
        np.minimum.at(dist, (src, dst), w)
        np.fill_diagonal(dist, 0.0)
        return dist

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Graph with every edge reversed."""
        src, dst, w = self.edge_array()
        return CSRGraph.from_edges(self.num_vertices, dst, src, w, name=self.name)

    def symmetrize(self) -> "CSRGraph":
        """Union of the graph and its reverse (min weight on duplicates)."""
        src, dst, w = self.edge_array()
        return CSRGraph.from_edges(
            self.num_vertices,
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
            np.concatenate([w, w]),
            name=self.name,
        )

    def permute(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel vertices: new id of old vertex ``v`` is ``perm[v]``.

        The boundary algorithm uses this to make each component contiguous
        with its boundary vertices first (Figure 1 of the paper).
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = self.num_vertices
        if perm.shape != (n,) or np.sort(perm).tolist() != list(range(n)):
            raise ValueError("perm must be a permutation of range(n)")
        src, dst, w = self.edge_array()
        return CSRGraph.from_edges(n, perm[src], perm[dst], w, name=self.name)

    def subgraph(self, vertices: np.ndarray) -> "CSRGraph":
        """Induced subgraph; vertex ``vertices[i]`` becomes vertex ``i``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        n = self.num_vertices
        local = np.full(n, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size)
        src, dst, w = self.edge_array()
        keep = (local[src] >= 0) & (local[dst] >= 0)
        return CSRGraph.from_edges(
            vertices.size, local[src[keep]], local[dst[keep]], w[keep], name=self.name
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Copy of the graph carrying a new label."""
        return CSRGraph(self.indptr, self.indices, self.weights, name=name)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRGraph({label} n={self.num_vertices} m={self.num_edges} "
            f"density={self.density:.4%})"
        )
