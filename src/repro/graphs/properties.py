"""Graph feature extraction used by the selector and the dataset tables.

:func:`analyze` produces the columns of the paper's Tables III/IV: vertex and
edge counts, density (``m/n²``), degree statistics, the :math:`\\sqrt{kn}`
ideal-separator reference, and connectivity. Boundary-node counts (which need
a partition) live in :mod:`repro.partition.separator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["GraphProperties", "analyze", "connected_components", "is_connected", "largest_component"]


@dataclass(frozen=True)
class GraphProperties:
    """Summary features of a graph (one row of Table III/IV)."""

    name: str
    num_vertices: int
    num_edges: int
    density: float
    max_out_degree: int
    mean_out_degree: float
    degree_p99: float
    ideal_separator: float
    num_components: int

    @property
    def density_percent(self) -> float:
        """Density as a percentage, the unit used in the paper's tables."""
        return 100.0 * self.density


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Weakly connected component label per vertex (iterative BFS).

    Direction is ignored: the paper's separator analysis and partitioner
    treat graphs as undirected.
    """
    n = graph.num_vertices
    sym = graph.symmetrize()
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        frontier = np.array([start], dtype=np.int64)
        labels[start] = current
        while frontier.size:
            nxt: list[np.ndarray] = []
            for u in frontier:
                nbrs, _ = sym.neighbors(int(u))
                fresh = nbrs[labels[nbrs] < 0]
                if fresh.size:
                    labels[fresh] = current
                    nxt.append(fresh)
            frontier = np.concatenate(nxt) if nxt else np.empty(0, dtype=np.int64)
        current += 1
    return labels


def is_connected(graph: CSRGraph) -> bool:
    """True when the graph is weakly connected (single component)."""
    if graph.num_vertices == 0:
        return True
    return int(connected_components(graph).max()) == 0


def largest_component(graph: CSRGraph) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on the largest weakly connected component.

    Returns ``(subgraph, vertices)`` where ``vertices[i]`` is the original
    id of the subgraph's vertex ``i``. Road datasets often carry stray
    islands; extracting the main component keeps APSP outputs meaningful.
    """
    labels = connected_components(graph)
    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=np.int64)
    sizes = np.bincount(labels)
    keep = np.nonzero(labels == int(np.argmax(sizes)))[0]
    return graph.subgraph(keep), keep


def analyze(graph: CSRGraph, *, k: int | None = None) -> GraphProperties:
    """Compute summary features.

    ``k`` is the partition component count used in the paper's
    :math:`\\sqrt{kn}` ideal-separator column; it defaults to the paper's
    choice :math:`k = \\sqrt{n}` (Section IV-B), giving
    :math:`\\sqrt{kn} = n^{3/4}`.
    """
    n = graph.num_vertices
    deg = np.asarray(graph.out_degree())
    if k is None:
        k = max(1, int(round(np.sqrt(n))))
    labels = connected_components(graph)
    return GraphProperties(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        density=graph.density,
        max_out_degree=int(deg.max(initial=0)),
        mean_out_degree=float(deg.mean()) if n else 0.0,
        degree_p99=float(np.percentile(deg, 99)) if n else 0.0,
        ideal_separator=float(np.sqrt(k * n)),
        num_components=int(labels.max(initial=-1)) + 1,
    )
