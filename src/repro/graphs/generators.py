"""Synthetic graph generators.

Four families cover the paper's evaluation inputs:

* :func:`rmat` — the R-MAT recursive-matrix generator [Chakrabarti et al.,
  SDM'04], used by the paper for the scaling study (Table V) and the density
  crossover study (Table VI). Produces scale-free degree distributions.
* :func:`planar_like` — a perturbed 2-D lattice that behaves like the paper's
  road/redistricting graphs: bounded degree and an :math:`O(\\sqrt{n})`
  separator, so the k-way partitioner finds few boundary vertices.
* :func:`random_geometric` — a random geometric graph; with a generous radius
  it mimics the paper's FEM/structural matrices (pkustk14, SiO2, …): sparse
  overall but with a *large* separator.
* :func:`erdos_renyi` — uniform random graphs, used by calibration runs and
  tests.

All generators take an explicit ``seed`` and return :class:`CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["erdos_renyi", "planar_like", "random_geometric", "rmat", "road_like", "subdivide"]


def _weights(rng: np.random.Generator, size: int, lo: float, hi: float) -> np.ndarray:
    """Integer-valued weights in ``[lo, hi]`` (paper uses int distances)."""
    return rng.integers(int(lo), int(hi) + 1, size=size).astype(np.float64)


def rmat(
    num_vertices: int,
    num_edges: int,
    *,
    a: float = 0.45,
    b: float = 0.22,
    c: float = 0.22,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 100.0),
    symmetric: bool = False,
    name: str = "",
) -> CSRGraph:
    """Generate an R-MAT graph with ``num_edges`` sampled edges.

    Each edge picks a quadrant of the adjacency matrix recursively with
    probabilities ``(a, b, c, d = 1 - a - b - c)``; duplicates are merged, so
    the resulting edge count can be slightly below ``num_edges`` for dense
    requests (matching the standard generator's behaviour).
    """
    if not 0 < a + b + c < 1:
        raise ValueError("a + b + c must lie in (0, 1)")
    n = int(num_vertices)
    levels = max(1, int(np.ceil(np.log2(max(n, 2)))))
    size = 1 << levels
    rng = np.random.default_rng(seed)

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    d = 1.0 - a - b - c
    thresholds = np.array([a, a + b, a + b + c, a + b + c + d])
    for _level in range(levels):
        src <<= 1
        dst <<= 1
        # Perturb quadrant probabilities per level, as the original
        # generator does, to avoid exactly self-similar artifacts.
        noise = rng.uniform(0.95, 1.05, size=4)
        probs = thresholds * noise / (thresholds[-1] * noise[-1])
        u = rng.random(num_edges)
        quad = np.searchsorted(probs, u, side="right").clip(0, 3)
        src += quad >> 1
        dst += quad & 1
    # Fold indices beyond n back into range (keeps degree skew).
    src %= n
    dst %= n

    w = _weights(rng, num_edges, *weight_range)
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        w = np.concatenate([w, w])
    label = name or f"rmat(n={n},m={num_edges})"
    return CSRGraph.from_edges(n, src, dst, w, name=label)


def planar_like(
    num_vertices: int,
    *,
    extra_edge_fraction: float = 0.1,
    drop_fraction: float = 0.05,
    diagonal_fraction: float = 0.0,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 100.0),
    name: str = "",
) -> CSRGraph:
    """Perturbed 2-D lattice: a road-network stand-in with a small separator.

    Starts from a ``rows × cols`` grid (4-neighbour), removes
    ``drop_fraction`` of grid edges, triangulates ``diagonal_fraction`` of
    the cells (a planar way to raise the degree — redistricting adjacency
    graphs are degree-5-ish planar triangulations) and adds
    ``extra_edge_fraction · n`` short shortcut edges between nearby grid
    cells. Degrees stay bounded and any balanced k-way cut has
    :math:`O(\\sqrt{n/k} \\cdot k)` boundary vertices — the paper's "graphs
    with a small separator" class. The graph is symmetric (road networks
    are undirected).
    """
    n = int(num_vertices)
    rows = int(np.floor(np.sqrt(n)))
    cols = (n + rows - 1) // rows
    rng = np.random.default_rng(seed)

    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])

    keep = rng.random(src.size) >= drop_fraction
    src, dst = src[keep], dst[keep]

    if diagonal_fraction > 0:
        diag_src = ids[:-1, :-1].ravel()
        diag_dst = ids[1:, 1:].ravel()
        pick = rng.random(diag_src.size) < diagonal_fraction
        src = np.concatenate([src, diag_src[pick]])
        dst = np.concatenate([dst, diag_dst[pick]])

    extra = int(extra_edge_fraction * rows * cols)
    if extra:
        er = rng.integers(0, rows, size=extra)
        ec = rng.integers(0, cols, size=extra)
        dr = rng.integers(-2, 3, size=extra)
        dc = rng.integers(-2, 3, size=extra)
        tr = np.clip(er + dr, 0, rows - 1)
        tc = np.clip(ec + dc, 0, cols - 1)
        es = ids[er, ec]
        ed = ids[tr, tc]
        src = np.concatenate([src, es])
        dst = np.concatenate([dst, ed])

    w = _weights(rng, src.size, *weight_range)
    src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    w = np.concatenate([w, w])
    total = rows * cols
    graph = CSRGraph.from_edges(total, src, dst, w, name=name or f"planar(n={total})")
    if total != n:
        graph = graph.subgraph(np.arange(n)).with_name(name or f"planar(n={n})")
    return graph


def random_geometric(
    num_vertices: int,
    radius: float,
    *,
    dim: int = 2,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 100.0),
    max_degree: int | None = None,
    name: str = "",
) -> CSRGraph:
    """Random geometric graph on the unit square/cube (symmetric).

    Vertices are uniform points in ``[0,1]^dim``; each pair within
    ``radius`` is connected. Uses a cell grid so construction is
    near-linear in the output size. ``dim=3`` mimics FEM volume meshes
    (pkustk14, fe_tooth, …): sparse in density, but with an
    :math:`O(n^{2/3})` separator — *large* relative to the paper's
    :math:`\\sqrt{kn}` ideal, which is what pushes these graphs to
    Johnson's algorithm.
    """
    n = int(num_vertices)
    if dim not in (2, 3):
        raise ValueError("dim must be 2 or 3")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, dim))
    cell = max(radius, 1e-9)
    grid_dim = max(1, int(1.0 / cell))
    coords = np.minimum((pts / cell).astype(np.int64), grid_dim - 1)
    # linear cell id
    cell_id = coords[:, 0]
    for axis in range(1, dim):
        cell_id = cell_id * grid_dim + coords[:, axis]
    num_cells = grid_dim**dim
    order = np.argsort(cell_id, kind="stable")

    sorted_cells = cell_id[order]
    starts = np.searchsorted(sorted_cells, np.arange(num_cells))
    ends = np.searchsorted(sorted_cells, np.arange(num_cells), side="right")

    from itertools import product

    offsets = list(product((-1, 0, 1), repeat=dim))
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    r2 = radius * radius
    for idx in product(range(grid_dim), repeat=dim):
        cid = 0
        for axis in range(dim):
            cid = cid * grid_dim + idx[axis]
        mine = order[starts[cid] : ends[cid]]
        if mine.size == 0:
            continue
        neigh: list[np.ndarray] = []
        for off in offsets:
            npos = tuple(idx[a] + off[a] for a in range(dim))
            if all(0 <= npos[a] < grid_dim for a in range(dim)):
                nid = 0
                for axis in range(dim):
                    nid = nid * grid_dim + npos[axis]
                neigh.append(order[starts[nid] : ends[nid]])
        cand = np.concatenate(neigh)
        diff = pts[mine][:, None, :] - pts[cand][None, :, :]
        close = (diff * diff).sum(axis=2) <= r2
        ii, jj = np.nonzero(close)
        s, t = mine[ii], cand[jj]
        keep = s < t
        src_parts.append(s[keep])
        dst_parts.append(t[keep])

    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:  # pragma: no cover - degenerate radius
        src = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.int64)

    if max_degree is not None and src.size:
        # Cap degree by randomly keeping at most max_degree/2 undirected
        # edges per endpoint (approximate, applied to the lower-degree side).
        perm = rng.permutation(src.size)
        src, dst = src[perm], dst[perm]
        deg = np.zeros(n, dtype=np.int64)
        keep = np.zeros(src.size, dtype=bool)
        half = max(1, max_degree // 2)
        for i in range(src.size):
            u, v = src[i], dst[i]
            if deg[u] < half and deg[v] < half:
                keep[i] = True
                deg[u] += 1
                deg[v] += 1
        src, dst = src[keep], dst[keep]

    w = _weights(rng, src.size, *weight_range)
    src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    w = np.concatenate([w, w])
    return CSRGraph.from_edges(n, src, dst, w, name=name or f"geometric(n={n},r={radius:g})")


def subdivide(graph: CSRGraph, factor: float, *, seed: int = 0, name: str = "") -> CSRGraph:
    """Subdivide undirected edges into chains of ~``factor`` segments.

    Road networks are dominated by degree-2 chain vertices; subdividing a
    planar skeleton reproduces that shape (directed ``m/n`` tends to 2 as
    ``factor`` grows). ``factor`` may be fractional: each edge independently
    gets ``floor(factor)`` or ``ceil(factor)`` segments with matching
    expectation. Assumes a symmetric input graph; weights of the chain
    segments split the original weight.
    """
    if factor <= 1.0:
        return graph if not name else graph.with_name(name)
    rng = np.random.default_rng(seed)
    src, dst, w = graph.edge_array()
    und = src < dst  # one record per undirected edge
    src, dst, w = src[und], dst[und], w[und]
    base = int(np.floor(factor))
    frac = factor - base
    segs = base + (rng.random(src.size) < frac).astype(np.int64)
    segs = np.maximum(segs, 1)

    n = graph.num_vertices
    extra = int((segs - 1).sum())
    new_ids = n + np.arange(extra, dtype=np.int64)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_w: list[np.ndarray] = []
    cursor = 0
    # Group edges by segment count so each group vectorises.
    for c in np.unique(segs):
        sel = segs == c
        cnt = int(sel.sum())
        s, t, ww = src[sel], dst[sel], w[sel]
        if c == 1:
            out_src.append(s)
            out_dst.append(t)
            out_w.append(ww)
            continue
        mids = new_ids[cursor : cursor + cnt * (c - 1)].reshape(cnt, c - 1)
        cursor += cnt * (c - 1)
        chain = np.concatenate([s[:, None], mids, t[:, None]], axis=1)
        seg_w = np.maximum(np.round(ww / c), 1.0)
        for j in range(c):
            out_src.append(chain[:, j])
            out_dst.append(chain[:, j + 1])
            out_w.append(seg_w)
    s = np.concatenate(out_src)
    t = np.concatenate(out_dst)
    ww = np.concatenate(out_w)
    total = n + extra
    label = name or f"{graph.name}/subdiv({factor:g})"
    return CSRGraph.from_edges(
        total,
        np.concatenate([s, t]),
        np.concatenate([t, s]),
        np.concatenate([ww, ww]),
        name=label,
    )


def road_like(
    num_vertices: int,
    avg_degree: float,
    *,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 100.0),
    name: str = "",
) -> CSRGraph:
    """Road-network stand-in with a target directed ``m/n`` ratio.

    Builds a planar-like intersection skeleton and subdivides its edges into
    chains. A skeleton has directed degree ≈4; chains of ``c`` segments give
    ``m/n = 4c/(2c − 1)``, so ``c = d/(2d − 4)`` hits ``avg_degree = d`` for
    ``2 < d ≤ 4``. This reproduces the usroads/luxembourg_osm shape: bounded
    degree, huge diameter, small separator.
    """
    d = float(avg_degree)
    if not 2.0 < d <= 4.0:
        raise ValueError("road_like supports average directed degree in (2, 4]")
    c = d / (2.0 * d - 4.0) if d < 4.0 else 1.0
    c = min(c, 40.0)
    # Skeleton size so the subdivided graph has ~num_vertices vertices:
    # n_total = n0 * (2c - 1).
    n0 = max(16, int(round(num_vertices / (2.0 * c - 1.0))))
    skeleton = planar_like(
        n0,
        extra_edge_fraction=0.0,
        drop_fraction=0.02,
        seed=seed,
        weight_range=weight_range,
    )
    label = name or f"road(n={num_vertices},d={d:g})"
    return subdivide(skeleton, c, seed=seed + 1, name=label)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    *,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 100.0),
    symmetric: bool = False,
    name: str = "",
) -> CSRGraph:
    """Uniform random directed graph with ``num_edges`` sampled edges."""
    n = int(num_vertices)
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=num_edges)
    dst = rng.integers(0, n, size=num_edges)
    w = _weights(rng, num_edges, *weight_range)
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        w = np.concatenate([w, w])
    return CSRGraph.from_edges(n, src, dst, w, name=name or f"er(n={n},m={num_edges})")
