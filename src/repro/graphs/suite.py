"""Registry of synthetic stand-ins for the paper's evaluation graphs.

The paper evaluates on 29 SuiteSparse matrices (Tables III and IV) plus
R-MAT graphs. SuiteSparse downloads are unavailable offline, so each matrix
gets a *generated stand-in* that matches its graph class:

* road networks (usroads, luxembourg_osm) → :func:`repro.graphs.generators.road_like`
  (degree-2 chains, small separator);
* redistricting graphs (\\*2010) → :func:`planar_like` (planar adjacency,
  small separator, directed m/n ≈ 5);
* FEM / structural matrices (pkustk14, SiO2, …) → :func:`random_geometric`
  (sparse in density but high average degree, *large* separator);
* web / scale-free matrices (Stanford) → :func:`rmat`.

Sizes are scaled by ``scale`` (default 1/64) relative to the paper, with the
simulated device scaled to match (see :meth:`repro.gpu.device.DeviceSpec.scaled`).
Because ``density = m/n²`` and both n and m scale linearly, the scaled graph's
density is ``1/scale`` times the paper's; :func:`SuiteEntry.effective_density`
recovers the paper-equivalent value, and the selector accepts a
``density_scale`` for exactly this correction.

Each entry records the paper's reported features so benchmark output can put
paper numbers next to measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import planar_like, random_geometric, rmat, road_like

__all__ = ["SuiteEntry", "DEFAULT_SCALE", "get_suite_graph", "list_suite", "suite_entry"]

#: default linear scale of stand-ins relative to the paper's graphs
DEFAULT_SCALE = 1.0 / 64.0


@dataclass(frozen=True)
class SuiteEntry:
    """One paper evaluation graph and its stand-in generator."""

    name: str
    family: str  # "road" | "redistrict" | "fem" | "web"
    small_separator: bool
    tier: str  # "cpu-fit" (Table III) | "cpu-exceed" (Table IV)
    paper_n: int  # vertices, paper value
    paper_m: int  # directed edges, paper value
    paper_boundary: int | None  # reported #boundary nodes (Table III only)
    paper_density_pct: float  # reported density, percent

    def generate(self, scale: float = DEFAULT_SCALE, *, seed: int | None = None) -> CSRGraph:
        """Build the stand-in at ``scale`` times the paper size."""
        n = max(64, int(round(self.paper_n * scale)))
        m = max(n, int(round(self.paper_m * scale)))
        avg_deg = self.paper_m / self.paper_n
        if seed is None:
            # stable across processes (str hash() is salted)
            import zlib

            seed = zlib.crc32(self.name.encode()) % (2**31)
        if self.family == "road":
            g = road_like(n, min(4.0, max(2.05, avg_deg)), seed=seed, name=self.name)
        elif self.family == "redistrict":
            # planar triangulated lattice: diagonals raise m/n toward ≈5
            # without shortcuts, keeping the separator small
            diag = min(1.0, max(0.0, (avg_deg - 3.9) / 2.0))
            g = planar_like(
                n,
                extra_edge_fraction=0.0,
                drop_fraction=0.03,
                diagonal_fraction=diag,
                seed=seed,
                name=self.name,
            )
        elif self.family == "fem":
            import numpy as np

            # 3-D volume mesh: degree d needs radius with n·(4/3)πr³ = d
            radius = float((3.0 * avg_deg / (4.0 * np.pi * n)) ** (1.0 / 3.0))
            g = random_geometric(n, radius, dim=3, seed=seed, name=self.name)
        elif self.family == "web":
            g = rmat(n, m, seed=seed, symmetric=False, name=self.name)
        else:  # pragma: no cover - registry is static
            raise ValueError(f"unknown family {self.family!r}")
        return g

    def effective_density(self, graph: CSRGraph, scale: float = DEFAULT_SCALE) -> float:
        """Paper-equivalent density of a scaled stand-in (fraction, not %)."""
        return graph.density * scale


def _e(name, family, small, tier, n_k, m_k, boundary, dens) -> SuiteEntry:
    return SuiteEntry(
        name=name,
        family=family,
        small_separator=small,
        tier=tier,
        paper_n=int(n_k * 1000),
        paper_m=int(m_k * 1000),
        paper_boundary=boundary,
        paper_density_pct=dens,
    )


#: Table III — output fits in CPU memory. Order follows the paper.
_TABLE3: list[SuiteEntry] = [
    _e("pkustk14", "fem", False, "cpu-fit", 152, 14988, 136798, 0.0649),
    _e("SiO2", "fem", False, "cpu-fit", 155, 11439, 155319, 0.0474),
    _e("bmwcra_1", "fem", False, "cpu-fit", 149, 10793, 117156, 0.0488),
    _e("gearbox", "fem", False, "cpu-fit", 154, 9234, 88741, 0.0391),
    # olafu/net4-1: the paper's printed density column disagrees with its
    # own n,m columns (m/n² gives 0.056% and 0.033%); we record the
    # self-consistent values (fe_tooth etc. check out exactly).
    _e("olafu", "fem", False, "cpu-fit", 74, 3071, 42686, 0.0561),
    _e("net4-1", "fem", False, "cpu-fit", 88, 2530, 57315, 0.0327),
    _e("fe_tooth", "fem", False, "cpu-fit", 78, 905, 37186, 0.0148),
    _e("onera_dual", "fem", False, "cpu-fit", 86, 505, 31061, 0.0069),
    _e("usroads-48", "road", True, "cpu-fit", 126, 324, 8790, 0.0020),
    _e("usroads", "road", True, "cpu-fit", 129, 331, 8758, 0.0020),
    _e("luxembourg_osm", "road", True, "cpu-fit", 115, 239, 2543, 0.0018),
    _e("wi2010", "redistrict", True, "cpu-fit", 86, 428, 12665, 0.0058),
    _e("nm2010", "redistrict", True, "cpu-fit", 169, 831, 20498, 0.0029),
    _e("me2010", "redistrict", True, "cpu-fit", 70, 335, 10668, 0.0069),
    _e("md2010", "redistrict", True, "cpu-fit", 145, 700, 17057, 0.0033),
    _e("id2010", "redistrict", True, "cpu-fit", 150, 728, 19040, 0.0032),
    _e("nd2010", "redistrict", True, "cpu-fit", 134, 626, 18262, 0.0035),
    _e("nj2010", "redistrict", True, "cpu-fit", 170, 830, 20188, 0.0029),
    _e("wv2010", "redistrict", True, "cpu-fit", 135, 663, 17734, 0.0036),
]

#: Table IV — output exceeds CPU memory. Boundary counts were not reported.
_TABLE4: list[SuiteEntry] = [
    _e("af_shell1", "fem", False, "cpu-exceed", 505, 18094, None, 0.0071),
    _e("cage13", "fem", False, "cpu-exceed", 445, 7479, None, 0.0038),
    _e("kkt_power", "fem", False, "cpu-exceed", 457, 11330, None, 0.0054),
    _e("lia", "road", True, "cpu-exceed", 256, 721, None, 0.0011),
    _e("pwtk", "fem", False, "cpu-exceed", 218, 11852, None, 0.0250),
    _e("stanford", "web", False, "cpu-exceed", 282, 2312, None, 0.0029),
    _e("stomach", "fem", False, "cpu-exceed", 213, 3022, None, 0.0066),
    _e("troll", "fem", False, "cpu-exceed", 213, 12199, None, 0.0268),
    _e("boyd2", "road", True, "cpu-exceed", 466, 1780, None, 0.0008),
    _e("CO", "fem", False, "cpu-exceed", 221, 7887, None, 0.0161),
]

_REGISTRY: dict[str, SuiteEntry] = {e.name: e for e in _TABLE3 + _TABLE4}


def list_suite(
    *,
    tier: str | None = None,
    small_separator: bool | None = None,
    family: str | None = None,
) -> list[SuiteEntry]:
    """Filtered view of the registry, in paper table order."""
    out = []
    for entry in _TABLE3 + _TABLE4:
        if tier is not None and entry.tier != tier:
            continue
        if small_separator is not None and entry.small_separator != small_separator:
            continue
        if family is not None and entry.family != family:
            continue
        out.append(entry)
    return out


def suite_entry(name: str) -> SuiteEntry:
    """Look up one registry entry by paper matrix name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown suite graph {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_suite_graph(name: str, scale: float = DEFAULT_SCALE, *, seed: int | None = None) -> CSRGraph:
    """Generate the stand-in for paper matrix ``name`` at ``scale``."""
    return suite_entry(name).generate(scale, seed=seed)
