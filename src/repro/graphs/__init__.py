"""Graph substrate: CSR representation, generators, I/O, and properties.

This subpackage provides everything the APSP algorithms consume:

* :class:`~repro.graphs.csr.CSRGraph` — the weighted directed graph type used
  throughout the library (compressed sparse row, numpy-backed).
* :mod:`~repro.graphs.generators` — R-MAT, planar-like lattice (road-network
  stand-in), random geometric, and Erdős–Rényi generators.
* :mod:`~repro.graphs.io` — Matrix Market and edge-list readers/writers
  (SuiteSparse matrices ship as Matrix Market files).
* :mod:`~repro.graphs.properties` — density, degree statistics, connectivity.
* :mod:`~repro.graphs.suite` — the registry of synthetic stand-ins for the
  paper's SuiteSparse evaluation graphs (Tables III and IV).
"""

from repro.graphs.composite import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    grid_2d,
    grid_3d,
    path_graph,
    star_graph,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    erdos_renyi,
    planar_like,
    random_geometric,
    rmat,
)
from repro.graphs.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.graphs.properties import GraphProperties, analyze, largest_component
from repro.graphs.suite import SuiteEntry, get_suite_graph, list_suite, suite_entry

__all__ = [
    "CSRGraph",
    "GraphProperties",
    "SuiteEntry",
    "analyze",
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "grid_2d",
    "grid_3d",
    "largest_component",
    "path_graph",
    "star_graph",
    "erdos_renyi",
    "get_suite_graph",
    "list_suite",
    "planar_like",
    "random_geometric",
    "read_edge_list",
    "read_matrix_market",
    "rmat",
    "suite_entry",
    "write_edge_list",
    "write_matrix_market",
]
