"""Composite and structured graph constructors.

Deterministic building blocks for tests, calibration, and didactic
examples — shapes whose separator/diameter/degree properties are known in
closed form:

* :func:`disjoint_union` — components side by side (exercises the
  disconnected-input paths of every algorithm);
* :func:`grid_2d` / :func:`grid_3d` — exact lattices (the planar and
  volume separator archetypes: O(√n) and O(n^{2/3}));
* :func:`path_graph` / :func:`cycle_graph` — extreme-diameter worklists;
* :func:`star_graph` — the 1-vertex separator / maximum-degree hub;
* :func:`complete_graph` — the dense extreme of the density filter.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "grid_2d",
    "grid_3d",
    "path_graph",
    "star_graph",
]


def disjoint_union(graphs: list[CSRGraph], *, name: str = "") -> CSRGraph:
    """Place the graphs side by side (vertex ids offset in input order)."""
    if not graphs:
        return CSRGraph.from_edges(0, np.array([]), np.array([]), np.array([]), name=name)
    srcs, dsts, ws = [], [], []
    offset = 0
    for g in graphs:
        s, d, w = g.edge_array()
        srcs.append(s + offset)
        dsts.append(d + offset)
        ws.append(w)
        offset += g.num_vertices
    return CSRGraph.from_edges(
        offset,
        np.concatenate(srcs),
        np.concatenate(dsts),
        np.concatenate(ws),
        name=name or "+".join(g.name or "g" for g in graphs),
    )


def _sym(n, src, dst, w, name):
    return CSRGraph.from_edges(
        n,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        np.concatenate([w, w]),
        name=name,
    )


def grid_2d(rows: int, cols: int, *, weight: float = 1.0, name: str = "") -> CSRGraph:
    """Exact ``rows × cols`` 4-neighbour lattice (symmetric)."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    src = np.concatenate([ids[:, :-1].ravel(), ids[:-1, :].ravel()])
    dst = np.concatenate([ids[:, 1:].ravel(), ids[1:, :].ravel()])
    w = np.full(src.size, weight)
    return _sym(rows * cols, src, dst, w, name or f"grid{rows}x{cols}")


def grid_3d(nx: int, ny: int, nz: int, *, weight: float = 1.0, name: str = "") -> CSRGraph:
    """Exact 3-D 6-neighbour lattice (symmetric) — the volume-mesh archetype."""
    ids = np.arange(nx * ny * nz, dtype=np.int64).reshape(nx, ny, nz)
    src = np.concatenate([
        ids[:-1, :, :].ravel(), ids[:, :-1, :].ravel(), ids[:, :, :-1].ravel()
    ])
    dst = np.concatenate([
        ids[1:, :, :].ravel(), ids[:, 1:, :].ravel(), ids[:, :, 1:].ravel()
    ])
    w = np.full(src.size, weight)
    return _sym(nx * ny * nz, src, dst, w, name or f"grid{nx}x{ny}x{nz}")


def path_graph(n: int, *, weight: float = 1.0, directed: bool = False, name: str = "") -> CSRGraph:
    """Path 0–1–…–(n−1): the maximum-diameter worklist stressor."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    w = np.full(src.size, weight)
    if directed:
        return CSRGraph.from_edges(n, src, dst, w, name=name or f"path{n}")
    return _sym(n, src, dst, w, name or f"path{n}")


def cycle_graph(n: int, *, weight: float = 1.0, directed: bool = False, name: str = "") -> CSRGraph:
    """Cycle 0–1–…–(n−1)–0."""
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    w = np.full(n, weight)
    if directed:
        return CSRGraph.from_edges(n, src, dst, w, name=name or f"cycle{n}")
    return _sym(n, src, dst, w, name or f"cycle{n}")


def star_graph(n: int, *, weight: float = 1.0, name: str = "") -> CSRGraph:
    """Hub 0 connected to every other vertex (symmetric): the 1-vertex
    separator and the dynamic-parallelism heavy-vertex extreme."""
    leaves = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    w = np.full(n - 1, weight)
    return _sym(n, hub, leaves, w, name or f"star{n}")


def complete_graph(n: int, *, weight: float = 1.0, name: str = "") -> CSRGraph:
    """Every ordered pair connected — density 1 − 1/n."""
    src = np.repeat(np.arange(n, dtype=np.int64), n)
    dst = np.tile(np.arange(n, dtype=np.int64), n)
    keep = src != dst
    return CSRGraph.from_edges(
        n, src[keep], dst[keep], np.full(int(keep.sum()), weight),
        name=name or f"K{n}",
    )
