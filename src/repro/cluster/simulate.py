"""Distributed blocked-FW driver: dynamic cluster simulator + IR mirror.

One **canonical op generator** (:func:`_cluster_ops`) produces the whole
distributed schedule — allocations, kernels, lowered collectives, and
barriers — in a global topological order. Two consumers walk it:

* :func:`cluster_fw` *executes* it: real block numerics through the
  kernel engine, plus a per-rank clock replay under the α–β link model,
  yielding the distance matrix, the full message trace, and the
  simulated makespan;
* :func:`emit_cluster_ir` *mirrors* it: one
  :class:`~repro.verifyplan.ir.PlanIR` per rank for the static verifier.

Because both consume the same op stream, the IR is structurally
identical to the executed schedule by construction — the point the
emitter-drift lint rule (RPR010) then enforces against regressions.

The schedule itself is the ScaLAPACK-style 2-D block-cyclic blocked
Floyd–Warshall round (:mod:`repro.cluster.topology`), per pivot ``k``:

1. the pivot block's owner closes ``A(k,k)`` (``fw_diag``) and
   **broadcasts** it to the leads in its grid row and grid column;
2. pivot row-panel owners fold the diagonal in (``mp_row``) and
   broadcast ``A(k,j)`` down grid column ``j mod Pc``; column panels
   symmetrically along grid row ``i mod Pr``;
3. every interior block owner updates ``A(i,j)``; with ``M > 1`` devices
   per node the inner dimension is **scattered** in slices to sibling
   ranks, partial products come back as a min-plus **reduce**, and the
   lead folds them in with ``min_combine``.

A fleet barrier ends each round; a terminal **all-gather** replicates
the full matrix on every lead.

Timing discipline (mirrored exactly by
:func:`repro.verifyplan.timing.predict_cluster_timing`): kernels pay the
device's launch overhead on the rank's host clock and occupy its single
stream; a send occupies the directed link FIFO for ``α + bytes/β`` and
its end time is the message's arrival; a recv floors the receiving
stream at the matched arrival; a barrier floors every clock fleet-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.topology import (
    BlockCyclicLayout,
    ClusterSpec,
    combine_cost,
    slice_widths,
)
from repro.core.minplus import DIST_DTYPE, minplus_update
from repro.gpu.kernels import extract_cost, fw_tile_cost, minplus_cost
from repro.graphs.csr import CSRGraph
from repro.verifyplan.ir import IREmitter, PlanIR, Rect

__all__ = ["ClusterResult", "Message", "cluster_fw", "default_block_size", "emit_cluster_ir"]

_ELEM = 4  # DIST_DTYPE is float32


def default_block_size(n: int, cluster: ClusterSpec) -> int:
    """Two block-rows per grid dimension, so every node owns work."""
    rounds = 2 * max(cluster.grid)
    return max(1, -(-n // rounds))


@dataclass(frozen=True)
class Message:
    """One point-to-point message of the executed schedule."""

    src: int
    dst: int
    tag: str
    key: tuple
    nbytes: int
    collective: str
    link: str


@dataclass
class ClusterResult:
    """Output of one simulated distributed blocked-FW run."""

    dist: np.ndarray
    messages: list[Message]
    #: directed (src_rank, dst_rank) -> total bytes carried
    link_bytes: dict[tuple[int, int], int]
    #: lowered-collective label -> total bytes
    kind_bytes: dict[str, int]
    makespan: float
    compute_seconds: float
    net_seconds: float
    num_rounds: int
    num_kernels: int
    block_size: int

    @property
    def num_messages(self) -> int:
        return len(self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(self.link_bytes.values())


# ---------------------------------------------------------------------------
# canonical op stream
# ---------------------------------------------------------------------------


def _cluster_ops(n: int, cluster: ClusterSpec, layout: BlockCyclicLayout):
    """Yield the distributed schedule as primitive op records (dicts).

    The order is a valid topological order: every recv appears after its
    matching send, every operand after the op producing it. Per-rank
    suborder is each rank's program order — the emitter and the dynamic
    simulator both follow it, which is what makes them structurally
    identical.
    """
    nd = layout.num_blocks
    num_dev = cluster.devices_per_node
    pr, pc = cluster.grid
    sz = layout.size
    lead = cluster.lead_rank

    for node in range(cluster.num_nodes):
        for i, j in layout.owned_blocks(node):
            yield {
                "kind": "alloc", "rank": lead(node), "buf": ("A", i, j),
                "shape": (sz(i), sz(j)), "prefilled": True,
            }

    for k in range(nd):
        bk = sz(k)
        owner_kk = layout.owner_node(k, k)
        diag_src = lead(owner_kk)
        okr, okc = cluster.grid_coords(owner_kk)
        scratch: dict[int, list[tuple]] = {}

        def note(rank: int, buf: tuple) -> None:
            scratch.setdefault(rank, []).append(buf)

        # ---- phase 1: close the pivot block, broadcast to row + column
        yield {"kind": "fw_diag", "rank": diag_src, "out": (("A", k, k), None)}
        diag_nodes = [
            cluster.node_at(okr, g) for g in range(pc)
            if cluster.node_at(okr, g) != owner_kk
        ] + [
            cluster.node_at(g, okc) for g in range(pr)
            if cluster.node_at(g, okc) != owner_kk
        ]
        if diag_nodes:
            yield {
                "kind": "collective", "ckind": "broadcast",
                "tag": f"diag:{k}", "root": diag_src,
                "ranks": (diag_src, *(lead(nd_) for nd_ in diag_nodes)),
            }
            for node in diag_nodes:
                yield {
                    "kind": "send", "src": diag_src, "dst": lead(node),
                    "tag": f"diag:{k}", "key": ("A", k, k),
                    "buf": (("A", k, k), None), "collective": "broadcast-diag",
                }
            for node in diag_nodes:
                yield {
                    "kind": "alloc", "rank": lead(node), "buf": ("diag",),
                    "shape": (bk, bk), "prefilled": False,
                }
                note(lead(node), ("diag",))
                yield {
                    "kind": "recv", "rank": lead(node), "src": diag_src,
                    "tag": f"diag:{k}", "key": ("A", k, k),
                    "buf": (("diag",), None), "collective": "broadcast-diag",
                }

        def diag_ref(node: int):
            return (("A", k, k), None) if node == owner_kk else (("diag",), None)

        # ---- phase 2: pivot row panels — update, broadcast down columns
        for j in range(nd):
            if j == k:
                continue
            owner = layout.owner_node(k, j)
            root = lead(owner)
            ogr, ogc = cluster.grid_coords(owner)
            yield {
                "kind": "mp", "rank": root, "name": "mp_row",
                "out": (("A", k, j), None), "a": diag_ref(owner),
                "b": (("A", k, j), None),
            }
            receivers = [
                cluster.node_at(g, ogc) for g in range(pr) if g != ogr
            ]
            if receivers:
                yield {
                    "kind": "collective", "ckind": "broadcast",
                    "tag": f"row:{k}:{j}", "root": root,
                    "ranks": (root, *(lead(nd_) for nd_ in receivers)),
                }
                for node in receivers:
                    yield {
                        "kind": "send", "src": root, "dst": lead(node),
                        "tag": f"row:{k}:{j}", "key": ("A", k, j),
                        "buf": (("A", k, j), None),
                        "collective": "broadcast-row",
                    }
        for j in range(nd):
            if j == k:
                continue
            owner = layout.owner_node(k, j)
            ogr, ogc = cluster.grid_coords(owner)
            for g in range(pr):
                if g == ogr:
                    continue
                rank = lead(cluster.node_at(g, ogc))
                yield {
                    "kind": "alloc", "rank": rank, "buf": ("row", j),
                    "shape": (bk, sz(j)), "prefilled": False,
                }
                note(rank, ("row", j))
                yield {
                    "kind": "recv", "rank": rank, "src": lead(owner),
                    "tag": f"row:{k}:{j}", "key": ("A", k, j),
                    "buf": (("row", j), None), "collective": "broadcast-row",
                }

        # ---- phase 2': pivot column panels — update, broadcast along rows
        for i in range(nd):
            if i == k:
                continue
            owner = layout.owner_node(i, k)
            root = lead(owner)
            ogr, ogc = cluster.grid_coords(owner)
            yield {
                "kind": "mp", "rank": root, "name": "mp_col",
                "out": (("A", i, k), None), "a": (("A", i, k), None),
                "b": diag_ref(owner),
            }
            receivers = [
                cluster.node_at(ogr, g) for g in range(pc) if g != ogc
            ]
            if receivers:
                yield {
                    "kind": "collective", "ckind": "broadcast",
                    "tag": f"col:{k}:{i}", "root": root,
                    "ranks": (root, *(lead(nd_) for nd_ in receivers)),
                }
                for node in receivers:
                    yield {
                        "kind": "send", "src": root, "dst": lead(node),
                        "tag": f"col:{k}:{i}", "key": ("A", i, k),
                        "buf": (("A", i, k), None),
                        "collective": "broadcast-col",
                    }
        for i in range(nd):
            if i == k:
                continue
            owner = layout.owner_node(i, k)
            ogr, ogc = cluster.grid_coords(owner)
            for g in range(pc):
                if g == ogc:
                    continue
                rank = lead(cluster.node_at(ogr, g))
                yield {
                    "kind": "alloc", "rank": rank, "buf": ("col", i),
                    "shape": (sz(i), bk), "prefilled": False,
                }
                note(rank, ("col", i))
                yield {
                    "kind": "recv", "rank": rank, "src": lead(owner),
                    "tag": f"col:{k}:{i}", "key": ("A", i, k),
                    "buf": (("col", i), None), "collective": "broadcast-col",
                }

        # ---- phase 3: interior updates (scatter / partials / reduce)
        widths = slice_widths(bk, num_dev)
        offs = [sum(widths[:d]) for d in range(num_dev)]
        active = [d for d in range(1, num_dev) if widths[d] > 0]
        for i in range(nd):
            if i == k:
                continue
            for j in range(nd):
                if j == k:
                    continue
                node = layout.owner_node(i, j)
                root = lead(node)
                bi, bj = sz(i), sz(j)
                akey = (
                    ("A", i, k) if layout.owner_node(i, k) == node
                    else ("col", i)
                )
                bkey = (
                    ("A", k, j) if layout.owner_node(k, j) == node
                    else ("row", j)
                )
                if active:
                    yield {
                        "kind": "collective", "ckind": "scatter",
                        "tag": f"scat:{k}:{i}:{j}", "root": root,
                        "ranks": (root, *(root + d for d in active)),
                    }
                    for d in active:
                        w, off = widths[d], offs[d]
                        yield {
                            "kind": "send", "src": root, "dst": root + d,
                            "tag": f"sa:{k}:{i}:{j}:{d}",
                            "key": ("A", i, k, d),
                            "buf": (akey, (0, bi, off, off + w)),
                            "collective": "scatter",
                        }
                        yield {
                            "kind": "send", "src": root, "dst": root + d,
                            "tag": f"sb:{k}:{i}:{j}:{d}",
                            "key": ("A", k, j, d),
                            "buf": (bkey, (off, off + w, 0, bj)),
                            "collective": "scatter",
                        }
                w0 = widths[0]
                yield {
                    "kind": "mp", "rank": root, "name": "mp_rank",
                    "out": (("A", i, j), None),
                    "a": (akey, (0, bi, 0, w0)),
                    "b": (bkey, (0, w0, 0, bj)),
                }
                if active:
                    yield {
                        "kind": "collective", "ckind": "reduce",
                        "tag": f"red:{k}:{i}:{j}", "root": root,
                        "ranks": (root, *(root + d for d in active)),
                    }
                for d in active:
                    sib = root + d
                    w = widths[d]
                    yield {
                        "kind": "alloc", "rank": sib, "buf": ("sa",),
                        "shape": (bi, w), "prefilled": False,
                    }
                    yield {
                        "kind": "recv", "rank": sib, "src": root,
                        "tag": f"sa:{k}:{i}:{j}:{d}", "key": ("A", i, k, d),
                        "buf": (("sa",), None), "collective": "scatter",
                    }
                    yield {
                        "kind": "alloc", "rank": sib, "buf": ("sb",),
                        "shape": (w, bj), "prefilled": False,
                    }
                    yield {
                        "kind": "recv", "rank": sib, "src": root,
                        "tag": f"sb:{k}:{i}:{j}:{d}", "key": ("A", k, j, d),
                        "buf": (("sb",), None), "collective": "scatter",
                    }
                    yield {
                        "kind": "alloc", "rank": sib, "buf": ("sp",),
                        "shape": (bi, bj), "prefilled": True,
                    }
                    yield {
                        "kind": "mp", "rank": sib, "name": "mp_part",
                        "out": (("sp",), None), "a": (("sa",), None),
                        "b": (("sb",), None),
                    }
                    yield {
                        "kind": "send", "src": sib, "dst": root,
                        "tag": f"red:{k}:{i}:{j}:{d}", "key": ("A", i, j, d),
                        "buf": (("sp",), None), "collective": "reduce",
                    }
                    for buf in (("sa",), ("sb",), ("sp",)):
                        yield {"kind": "free", "rank": sib, "buf": buf}
                    yield {
                        "kind": "alloc", "rank": root, "buf": ("part", d),
                        "shape": (bi, bj), "prefilled": False,
                    }
                    yield {
                        "kind": "recv", "rank": root, "src": sib,
                        "tag": f"red:{k}:{i}:{j}:{d}", "key": ("A", i, j, d),
                        "buf": (("part", d), None), "collective": "reduce",
                    }
                    yield {
                        "kind": "combine", "rank": root,
                        "out": (("A", i, j), None),
                        "part": (("part", d), None),
                    }
                    yield {"kind": "free", "rank": root, "buf": ("part", d)}

        for rank in sorted(scratch):
            for buf in scratch[rank]:
                yield {"kind": "free", "rank": rank, "buf": buf}
        yield {"kind": "barrier", "label": f"round-{k}"}

    # ---- terminal all-gather: replicate the matrix on every lead
    leads = [lead(node) for node in range(cluster.num_nodes)]
    if len(leads) > 1:
        yield {
            "kind": "collective", "ckind": "allgather", "tag": "gather",
            "root": leads[0], "ranks": tuple(leads),
        }
    for node in range(cluster.num_nodes):
        yield {
            "kind": "alloc", "rank": lead(node), "buf": ("full",),
            "shape": (n, n), "prefilled": False,
        }
    blocks = layout.blocks
    for node in range(cluster.num_nodes):
        root = lead(node)
        for i, j in layout.owned_blocks(node):
            out_rect = (
                blocks.start(i), blocks.stop(i),
                blocks.start(j), blocks.stop(j),
            )
            yield {
                "kind": "pack", "rank": root,
                "out": (("full",), out_rect), "src": (("A", i, j), None),
            }
            for other in leads:
                if other != root:
                    yield {
                        "kind": "send", "src": root, "dst": other,
                        "tag": f"gath:{i}:{j}", "key": ("A", i, j),
                        "buf": (("A", i, j), None), "collective": "allgather",
                    }
    for node in range(cluster.num_nodes):
        root = lead(node)
        for i in range(nd):
            for j in range(nd):
                owner = layout.owner_node(i, j)
                if owner == node:
                    continue
                out_rect = (
                    blocks.start(i), blocks.stop(i),
                    blocks.start(j), blocks.stop(j),
                )
                yield {
                    "kind": "recv", "rank": root, "src": lead(owner),
                    "tag": f"gath:{i}:{j}", "key": ("A", i, j),
                    "buf": (("full",), out_rect), "collective": "allgather",
                }
    yield {"kind": "barrier", "label": "after-allgather"}


# ---------------------------------------------------------------------------
# dynamic simulator
# ---------------------------------------------------------------------------


@dataclass
class _RankClock:
    """Per-rank clock state — the dynamic twin of the static replay."""

    host: float = 0.0
    stream: float = 0.0
    compute: float = 0.0
    net: dict[int, float] = field(default_factory=dict)
    busy_compute: float = 0.0
    busy_net: float = 0.0

    @property
    def elapsed(self) -> float:
        peak = max(self.host, self.compute)
        if self.net:
            peak = max(peak, max(self.net.values()))
        return peak

    def kernel(self, overhead: float, duration: float) -> None:
        self.host += overhead
        start = max(self.stream, self.host, self.compute)
        end = start + duration
        self.stream = end
        self.compute = end
        self.busy_compute += duration

    def send(self, dst: int, duration: float) -> float:
        start = max(self.stream, self.host, self.net.get(dst, 0.0))
        end = start + duration
        self.stream = end
        self.net[dst] = end
        self.busy_net += duration
        return end

    def recv(self, arrival: float) -> None:
        if arrival > self.stream:
            self.stream = arrival

    def floor(self, t: float) -> None:
        self.host = max(self.host, t)
        self.stream = max(self.stream, t)
        self.compute = max(self.compute, t)
        for dst in self.net:
            self.net[dst] = max(self.net[dst], t)


def cluster_fw(
    graph: CSRGraph,
    cluster: ClusterSpec,
    *,
    block_size: int | None = None,
) -> ClusterResult:
    """Run distributed blocked FW on the simulated cluster.

    Executes the canonical op stream: block numerics through the kernel
    engine (bit-identical to the single-device drivers) and the per-rank
    α–β clock replay described in the module docstring. Returns the full
    distance matrix (as gathered on lead 0) plus the complete message
    trace and timing.
    """
    from repro.core.engine import default_engine

    n = graph.num_vertices
    if block_size is None:
        block_size = default_block_size(n, cluster)
    layout = BlockCyclicLayout(n=n, block_size=block_size, grid=cluster.grid)
    spec = cluster.device
    engine = default_engine()
    dense = graph.to_dense(dtype=DIST_DTYPE)

    arrays: dict[tuple[int, tuple], np.ndarray] = {}
    clocks = [_RankClock() for _ in range(cluster.num_ranks)]
    #: (src, dst, tag) -> FIFO of (arrival time, payload snapshot)
    arrivals: dict[tuple[int, int, str], list[tuple[float, np.ndarray]]] = {}
    messages: list[Message] = []
    link_bytes: dict[tuple[int, int], int] = {}
    kind_bytes: dict[str, int] = {}
    num_kernels = 0

    def view(rank: int, ref) -> np.ndarray:
        key, rect = ref
        arr = arrays[(rank, key)]
        if rect is None:
            return arr
        r0, r1, c0, c1 = rect
        return arr[r0:r1, c0:c1]

    for op in _cluster_ops(n, cluster, layout):
        kind = op["kind"]
        if kind == "alloc":
            shape = op["shape"]
            if op["buf"][0] == "A" and len(op["buf"]) == 3:
                _, i, j = op["buf"]
                arr = np.ascontiguousarray(
                    dense[layout.blocks.slice(i), layout.blocks.slice(j)]
                )
            elif op["prefilled"]:
                arr = np.full(shape, np.inf, dtype=DIST_DTYPE)
            else:
                arr = np.empty(shape, dtype=DIST_DTYPE)
            arrays[(op["rank"], op["buf"])] = arr
        elif kind == "free":
            del arrays[(op["rank"], op["buf"])]
        elif kind == "fw_diag":
            arr = view(op["rank"], op["out"])
            engine.fw_inplace(arr)
            clocks[op["rank"]].kernel(
                spec.kernel_launch_overhead, fw_tile_cost(spec, arr.shape[0])
            )
            num_kernels += 1
        elif kind == "mp":
            out = view(op["rank"], op["out"])
            a = view(op["rank"], op["a"])
            b = view(op["rank"], op["b"])
            minplus_update(out, a, b, engine=engine)
            clocks[op["rank"]].kernel(
                spec.kernel_launch_overhead,
                minplus_cost(spec, out.shape[0], a.shape[1], out.shape[1]),
            )
            num_kernels += 1
        elif kind == "combine":
            out = view(op["rank"], op["out"])
            part = view(op["rank"], op["part"])
            np.minimum(out, part, out=out)
            clocks[op["rank"]].kernel(
                spec.kernel_launch_overhead,
                combine_cost(spec, out.shape[0], out.shape[1]),
            )
            num_kernels += 1
        elif kind == "pack":
            out = view(op["rank"], op["out"])
            out[...] = view(op["rank"], op["src"])
            clocks[op["rank"]].kernel(
                spec.kernel_launch_overhead,
                extract_cost(spec, out.shape[0], out.shape[1]),
            )
            num_kernels += 1
        elif kind == "send":
            src, dst = op["src"], op["dst"]
            data = view(src, op["buf"])
            nbytes = data.size * _ELEM
            link = cluster.link_of(src, dst)
            arrival = clocks[src].send(dst, link.duration(nbytes))
            arrivals.setdefault((src, dst, op["tag"]), []).append(
                (arrival, data.copy())
            )
            messages.append(Message(
                src=src, dst=dst, tag=op["tag"], key=op["key"],
                nbytes=nbytes, collective=op["collective"], link=link.name,
            ))
            link_bytes[(src, dst)] = link_bytes.get((src, dst), 0) + nbytes
            kind_bytes[op["collective"]] = (
                kind_bytes.get(op["collective"], 0) + nbytes
            )
        elif kind == "recv":
            arrival, payload = arrivals[
                (op["src"], op["rank"], op["tag"])
            ].pop(0)
            clocks[op["rank"]].recv(arrival)
            view(op["rank"], op["buf"])[...] = payload
        elif kind == "barrier":
            t = max(c.elapsed for c in clocks)
            for c in clocks:
                c.floor(t)
        # "collective" markers carry no clock or data effect

    dist = arrays[(cluster.lead_rank(0), ("full",))].copy()
    return ClusterResult(
        dist=dist,
        messages=messages,
        link_bytes=link_bytes,
        kind_bytes=kind_bytes,
        makespan=max(c.elapsed for c in clocks),
        compute_seconds=sum(c.busy_compute for c in clocks),
        net_seconds=sum(c.busy_net for c in clocks),
        num_rounds=layout.num_blocks,
        num_kernels=num_kernels,
        block_size=block_size,
    )


# ---------------------------------------------------------------------------
# static mirror
# ---------------------------------------------------------------------------


def emit_cluster_ir(
    n: int,
    cluster: ClusterSpec,
    *,
    block_size: int | None = None,
) -> list[PlanIR]:
    """Mirror the distributed schedule as one ``PlanIR`` per rank.

    Walks the same canonical op stream :func:`cluster_fw` executes, so
    every kernel launch, lowered collective message, and barrier appears
    in the same per-rank order with the same operand rectangles and byte
    counts. Owned blocks are allocated ``prefilled`` — the initial
    distribution is assumed done, exactly as the simulator seeds them
    from the graph.
    """
    if block_size is None:
        block_size = default_block_size(n, cluster)
    layout = BlockCyclicLayout(n=n, block_size=block_size, grid=cluster.grid)
    spec = cluster.device

    emitters = [
        IREmitter(
            "cluster-fw", f"{spec.name}#{r}", spec.memory_bytes, rank=r
        )
        for r in range(cluster.num_ranks)
    ]
    buffers: dict[tuple[int, tuple], object] = {}

    def bufname(key: tuple) -> str:
        if key[0] == "A" and len(key) == 3:
            return f"A({key[1]},{key[2]})"
        return ":".join(str(part) for part in key)

    def operand(rank: int, ref):
        key, rect = ref
        buf = buffers[(rank, key)]
        if rect is None:
            return buf
        r0, r1, c0, c1 = rect
        return (buf, Rect(r0, r1, c0, c1))

    for op in _cluster_ops(n, cluster, layout):
        kind = op["kind"]
        if kind == "alloc":
            rank = op["rank"]
            buffers[(rank, op["buf"])] = emitters[rank].alloc(
                bufname(op["buf"]), op["shape"], prefilled=op["prefilled"]
            )
        elif kind == "free":
            rank = op["rank"]
            emitters[rank].free(buffers.pop((rank, op["buf"])))
        elif kind == "fw_diag":
            out = operand(op["rank"], op["out"])
            emitters[op["rank"]].kernel(
                "fw_diag", reads=[out], writes=[out]
            )
        elif kind == "mp":
            rank = op["rank"]
            out = operand(rank, op["out"])
            emitters[rank].kernel(
                op["name"],
                reads=[out, operand(rank, op["a"]), operand(rank, op["b"])],
                writes=[out],
            )
        elif kind == "combine":
            rank = op["rank"]
            out = operand(rank, op["out"])
            part = operand(rank, op["part"])
            pbuf = buffers[(rank, op["part"][0])]
            emitters[rank].kernel(
                "min_combine",
                reads=[out, part],
                writes=[out],
                cost=combine_cost(spec, pbuf.shape[0], pbuf.shape[1]),
            )
        elif kind == "pack":
            rank = op["rank"]
            out_key, out_rect = op["out"]
            r0, r1, c0, c1 = out_rect
            emitters[rank].kernel(
                "pack",
                reads=[operand(rank, op["src"])],
                writes=[operand(rank, op["out"])],
                cost=extract_cost(spec, r1 - r0, c1 - c0),
            )
        elif kind == "send":
            src = op["src"]
            key, rect = op["buf"]
            buf = buffers[(src, key)]
            emitters[src].send(
                buf,
                None if rect is None else Rect(*rect),
                dst=op["dst"], tag=op["tag"], key=op["key"],
                collective=op["collective"],
            )
        elif kind == "recv":
            rank = op["rank"]
            key, rect = op["buf"]
            buf = buffers[(rank, key)]
            emitters[rank].recv(
                buf,
                None if rect is None else Rect(*rect),
                src=op["src"], tag=op["tag"], key=op["key"],
                collective=op["collective"],
            )
        elif kind == "collective":
            for rank in op["ranks"]:
                emitters[rank].collective(
                    op["ckind"], tag=op["tag"], root=op["root"],
                    ranks=op["ranks"],
                )
        elif kind == "barrier":
            for emitter in emitters:
                emitter.barrier(op["label"])

    return [emitter.finish() for emitter in emitters]
