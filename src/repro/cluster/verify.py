"""``verify_cluster`` — static verification of the distributed schedule.

Compiles the cluster blocked-FW schedule to one
:class:`~repro.verifyplan.ir.PlanIR` per rank and proves, without
executing anything:

- **per-rank residency / def-use / redundancy** — the single-device
  analyses (:func:`repro.verifyplan.analyze.audit_ir`) applied to every
  rank's IR;
- **cross-node happens-before** — the fleet vector-clock model checker
  (:func:`repro.verifyplan.hb.analyze_cluster_hb`) proving every
  inter-node conflicting access ordered in every interleaving, every
  receive matched (no orphaned sends, no deadlocked collective);
- **communication volume** — exact per-link and per-collective byte
  counts against the closed-form 2-D block-cyclic bounds
  (:mod:`repro.verifyplan.commbounds`);
- **timing** — the α–β link-model replay
  (:func:`repro.verifyplan.timing.predict_cluster_timing`) yielding the
  predicted makespan and network busy time.

With ``graph`` provided (``dynamic=True`` path), the dynamic cluster
simulator also runs and the verifier asserts the executed message trace
matches the static schedule byte-for-byte per link and per collective,
the simulated makespan equals the static prediction exactly, and the
computed distances equal the reference Floyd–Warshall solve.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cluster.simulate import cluster_fw, default_block_size, emit_cluster_ir
from repro.cluster.topology import BlockCyclicLayout, ClusterSpec
from repro.verifyplan.analyze import PlanFinding, audit_ir
from repro.verifyplan.commbounds import (
    CommReport,
    analyze_comm,
    cluster_comm_checks,
)
from repro.verifyplan.hb import HBReport, analyze_cluster_hb
from repro.verifyplan.timing import TimingReport, predict_cluster_timing

__all__ = ["ClusterVerification", "verify_cluster"]


def _fmt_bytes(b: int | float) -> str:
    if b >= 2**20:
        return f"{b / 2**20:.1f} MiB"
    return f"{b / 2**10:.1f} KiB"


@dataclass
class ClusterVerification:
    """Everything proven about one distributed schedule."""

    n: int
    cluster: str
    num_nodes: int
    devices_per_node: int
    grid: tuple[int, int]
    block_size: int
    num_blocks: int
    capacity: int = 0
    peak_bytes: int = 0
    num_ops: int = 0
    num_kernels: int = 0
    findings: list[PlanFinding] = field(default_factory=list)
    hb: HBReport | None = None
    comm: CommReport | None = None
    timing: TimingReport | None = None
    #: populated only when the dynamic simulator cross-validation ran
    cross_validation: dict | None = None

    @property
    def ok(self) -> bool:
        """Clean per-rank audits, ordered and matched in every
        interleaving, exact communication volumes, and (when run) a
        dynamic trace agreeing with the static schedule."""
        return (
            not self.findings
            and (self.hb is None or self.hb.ok)
            and (self.comm is None or self.comm.ok)
            and (
                self.cross_validation is None
                or all(self.cross_validation.values())
            )
        )

    def describe(self) -> str:
        head = (
            f"cluster verifier [{self.cluster}]: n={self.n}, grid "
            f"{self.grid[0]}x{self.grid[1]}, block {self.block_size} "
            f"({self.num_blocks} blocks) — "
            + ("VERIFIED" if self.ok else "FAILED")
        )
        lines = [head]
        lines.append(
            f"  residency: peak {_fmt_bytes(self.peak_bytes)} / "
            f"{_fmt_bytes(self.capacity)} per rank, {self.num_ops} ops, "
            f"{self.num_kernels} kernels, {len(self.findings)} finding(s)"
        )
        lines += [f"    {f.describe()}" for f in self.findings]
        if self.hb is not None:
            lines.append(
                f"  hb: {self.hb.num_streams} stream(s), "
                f"{self.hb.num_waits} wait(s) — "
                + ("ordered and matched in every interleaving"
                   if self.hb.ok else f"{len(self.hb.findings)} finding(s)")
            )
            lines += [f"    {f.describe()}" for f in self.hb.findings]
        if self.comm is not None:
            lines.append("  comm: " + self.comm.describe().replace("\n", "\n  "))
        if self.timing is not None:
            lines.append(
                f"  timing: predicted makespan {self.timing.makespan:.3e} s, "
                f"compute {self.timing.compute_seconds:.3e} s, network "
                f"{self.timing.net_seconds:.3e} s"
            )
        if self.cross_validation is not None:
            failed = [k for k, v in self.cross_validation.items() if not v]
            lines.append(
                "  dynamic cross-validation: "
                + ("trace == schedule == closed form, makespan exact, "
                   "distances exact" if not failed
                   else "MISMATCH in " + ", ".join(failed))
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "cluster": self.cluster,
            "num_nodes": self.num_nodes,
            "devices_per_node": self.devices_per_node,
            "grid": list(self.grid),
            "block_size": self.block_size,
            "num_blocks": self.num_blocks,
            "ok": self.ok,
            "capacity": self.capacity,
            "peak_bytes": self.peak_bytes,
            "num_ops": self.num_ops,
            "num_kernels": self.num_kernels,
            "findings": [
                {**asdict(f), "block": list(f.block) if f.block else None}
                for f in self.findings
            ],
            "hb": self.hb.to_dict() if self.hb is not None else None,
            "comm": self.comm.to_dict() if self.comm is not None else None,
            "timing": self.timing.to_dict() if self.timing is not None else None,
            "cross_validation": self.cross_validation,
        }


def verify_cluster(
    n: int,
    cluster: ClusterSpec,
    *,
    block_size: int | None = None,
    timing: bool = True,
    graph=None,
) -> ClusterVerification:
    """Statically verify the distributed blocked-FW schedule.

    ``n`` is the number of vertices; ``cluster`` fixes the node/device
    topology and interconnect model. Passing a ``graph`` (with
    ``graph.num_vertices == n``) additionally executes the dynamic
    simulator and cross-validates its message trace, makespan, and
    distances against the static proofs.
    """
    if graph is not None and graph.num_vertices != n:
        raise ValueError(
            f"graph has {graph.num_vertices} vertices, expected n={n}"
        )
    if block_size is None:
        block_size = default_block_size(n, cluster)
    layout = BlockCyclicLayout(n=n, block_size=block_size, grid=cluster.grid)
    irs = emit_cluster_ir(n, cluster, block_size=block_size)

    ver = ClusterVerification(
        n=n,
        cluster=cluster.name,
        num_nodes=cluster.num_nodes,
        devices_per_node=cluster.devices_per_node,
        grid=cluster.grid,
        block_size=block_size,
        num_blocks=layout.num_blocks,
        capacity=cluster.device.memory_bytes,
    )
    from repro.verifyplan.ir import KernelOp

    for ir in irs:
        peak, _tally, findings = audit_ir(ir)
        ver.peak_bytes = max(ver.peak_bytes, peak)
        ver.num_ops += ir.num_ops
        ver.num_kernels += sum(
            isinstance(op, KernelOp) and not op.annotate for op in ir.ops
        )
        prefix = cluster.rank_name(ir.rank)
        for f in findings:
            ver.findings.append(
                PlanFinding(
                    kind=f.kind,
                    buffer=f"{prefix}:{f.buffer}",
                    detail=f.detail,
                    op_index=f.op_index,
                    block=f.block,
                    wasted_bytes=f.wasted_bytes,
                )
            )
    ver.hb = analyze_cluster_hb(irs, node_names=cluster.node_names())
    tally = analyze_comm(irs)
    ver.comm = cluster_comm_checks(cluster, layout, tally)
    if timing:
        ver.timing = predict_cluster_timing(
            irs, cluster.device, link_of=cluster.link_of
        )

    if graph is not None:
        from repro.core.blocked_fw import floyd_warshall
        from repro.core.minplus import DIST_DTYPE
        import numpy as np

        result = cluster_fw(graph, cluster, block_size=block_size)
        reference = floyd_warshall(graph.to_dense(dtype=DIST_DTYPE))
        ver.cross_validation = {
            "link_bytes_match": result.link_bytes == tally.link_bytes,
            "kind_bytes_match": result.kind_bytes == tally.kind_bytes,
            "num_messages_match": result.num_messages == tally.num_messages,
            "kernels_match": result.num_kernels == ver.num_kernels,
            "makespan_exact": (
                ver.timing is None or result.makespan == ver.timing.makespan
            ),
            "distances_exact": bool(np.array_equal(result.dist, reference)),
        }
    return ver
