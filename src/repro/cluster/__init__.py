"""Distributed block-APSP: N nodes × M devices with a modeled fabric.

The paper scales APSP to one out-of-core device; this package models the
next step — a cluster of ``N`` nodes × ``M`` devices over an α–β
interconnect — and, in the spirit of the rest of the repository, ships
the **static verification layer** alongside the simulator:

- :mod:`~repro.cluster.topology` — nodes, links, process grid, and the
  2-D block-cyclic ownership layout;
- :mod:`~repro.cluster.simulate` — the dynamic cluster simulator
  (:func:`cluster_fw`, real numerics + modeled clocks) and its exact IR
  mirror (:func:`emit_cluster_ir`), both walking one canonical op
  stream so they agree by construction;
- :mod:`~repro.cluster.verify` — :func:`verify_cluster`, proving the
  schedule race/deadlock-free across nodes, its per-link byte counts
  equal to the closed-form 2-D block-cyclic bounds, and its predicted
  makespan equal to the simulator's.

Entry point: ``python -m repro verify-cluster``.
"""

from repro.cluster.simulate import (
    ClusterResult,
    Message,
    cluster_fw,
    default_block_size,
    emit_cluster_ir,
)
from repro.cluster.topology import (
    DEFAULT_INTER_LINK,
    DEFAULT_INTRA_LINK,
    BlockCyclicLayout,
    ClusterSpec,
    combine_cost,
    near_square_grid,
    slice_widths,
)
from repro.cluster.verify import ClusterVerification, verify_cluster

__all__ = [
    "DEFAULT_INTER_LINK",
    "DEFAULT_INTRA_LINK",
    "BlockCyclicLayout",
    "ClusterResult",
    "ClusterSpec",
    "ClusterVerification",
    "Message",
    "cluster_fw",
    "combine_cost",
    "default_block_size",
    "emit_cluster_ir",
    "near_square_grid",
    "slice_widths",
    "verify_cluster",
]
