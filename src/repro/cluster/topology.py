"""Cluster topology: nodes, links, and the 2-D block-cyclic layout.

The paper's out-of-core drivers stop at one host and one PCIe bus. This
module models the next scale: ``N`` nodes × ``M`` devices per node, with
a modeled interconnect whose per-link **latency** and **bandwidth** are
distinct from the PCIe constants in :class:`~repro.gpu.device.DeviceSpec`
(an α–β model per directed link; see
:class:`~repro.verifyplan.ir.LinkSpec`).

Ranks are numbered ``rank = node · M + d``. Device ``d = 0`` of each node
is the **lead rank**: it owns the node's share of the distance matrix and
drives inter-node traffic; sibling ranks (``d ≥ 1``) are intra-node
workers that receive inner-dimension slices and return partial min-plus
products (the lowered min-plus **reduce** collective).

Blocks are distributed **2-D block-cyclically** over a ``Pr × Pc``
process grid (near-square factorisation of ``N``): block ``(i, j)`` of
the :class:`~repro.core.tiling.BlockLayout` lives on the node at grid
coordinates ``(i mod Pr, j mod Pc)``. This is the classical ScaLAPACK
distribution for blocked Floyd–Warshall: each round's pivot row panel
broadcasts down its grid column, the pivot column panel along its grid
row, so per-node communication scales as ``O(n² · √P · n_d)`` — the
closed forms live in :mod:`repro.verifyplan.commbounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tiling import BlockLayout
from repro.gpu.device import TEST_DEVICE, DeviceSpec
from repro.gpu.kernels import DEVICE_ELEM_BYTES
from repro.verifyplan.ir import LinkSpec, NodeSpec

__all__ = [
    "DEFAULT_INTER_LINK",
    "DEFAULT_INTRA_LINK",
    "BlockCyclicLayout",
    "ClusterSpec",
    "combine_cost",
    "near_square_grid",
    "slice_widths",
]

#: default inter-node interconnect — deliberately slower than either
#: preset device's PCIe model (higher latency, lower bandwidth), so the
#: network is a first-class term in the cluster cost model
DEFAULT_INTER_LINK = LinkSpec(name="ib", latency=2e-5, bandwidth=5e7)

#: default intra-node link (device-to-device through the host bridge):
#: lower latency and higher bandwidth than the inter-node fabric
DEFAULT_INTRA_LINK = LinkSpec(name="pcie-p2p", latency=5e-6, bandwidth=2e8)


def near_square_grid(num_nodes: int) -> tuple[int, int]:
    """Largest ``Pr ≤ √N`` dividing ``N``; returns ``(Pr, N // Pr)``."""
    if num_nodes < 1:
        raise ValueError("need at least one node")
    pr = 1
    d = 1
    while d * d <= num_nodes:
        if num_nodes % d == 0:
            pr = d
        d += 1
    return pr, num_nodes // pr


def slice_widths(bk: int, num_devices: int) -> list[int]:
    """Even split of the inner dimension ``bk`` over ``M`` devices.

    Device 0 (the lead) takes the first slice; trailing slices may be 0
    when ``bk < M`` (those devices sit the block out).
    """
    base, extra = divmod(bk, num_devices)
    return [base + (1 if d < extra else 0) for d in range(num_devices)]


def combine_cost(spec: DeviceSpec, bi: int, bj: int) -> float:
    """Cost of the elementwise min combining one reduced partial tile.

    One min per element over two operands — purely memory bound; priced
    with the same roofline the other kernels use so the static and
    dynamic models agree to the bit.
    """
    flops = float(bi * bj)
    nbytes = DEVICE_ELEM_BYTES * (3.0 * bi * bj)
    return spec.kernel_launch_overhead + max(
        flops / spec.minplus_rate, nbytes / spec.mem_bandwidth
    )


@dataclass(frozen=True)
class ClusterSpec:
    """``N`` nodes × ``M`` devices plus the interconnect model."""

    name: str
    num_nodes: int
    devices_per_node: int
    device: DeviceSpec
    inter_link: LinkSpec
    intra_link: LinkSpec
    grid: tuple[int, int]

    @classmethod
    def make(
        cls,
        num_nodes: int,
        devices_per_node: int = 1,
        *,
        device: DeviceSpec = TEST_DEVICE,
        inter_link: LinkSpec = DEFAULT_INTER_LINK,
        intra_link: LinkSpec = DEFAULT_INTRA_LINK,
        grid: tuple[int, int] | None = None,
    ) -> "ClusterSpec":
        if num_nodes < 1 or devices_per_node < 1:
            raise ValueError("need num_nodes >= 1 and devices_per_node >= 1")
        if grid is None:
            grid = near_square_grid(num_nodes)
        pr, pc = grid
        if pr * pc != num_nodes:
            raise ValueError(f"grid {grid} does not tile {num_nodes} nodes")
        return cls(
            name=f"{device.name}-cluster{num_nodes}x{devices_per_node}",
            num_nodes=num_nodes,
            devices_per_node=devices_per_node,
            device=device,
            inter_link=inter_link,
            intra_link=intra_link,
            grid=grid,
        )

    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.devices_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.devices_per_node

    def lead_rank(self, node: int) -> int:
        return node * self.devices_per_node

    def is_lead(self, rank: int) -> bool:
        return rank % self.devices_per_node == 0

    def grid_coords(self, node: int) -> tuple[int, int]:
        return node // self.grid[1], node % self.grid[1]

    def node_at(self, gr: int, gc: int) -> int:
        return gr * self.grid[1] + gc

    def link_of(self, src_rank: int, dst_rank: int) -> LinkSpec:
        """The link carrying traffic from ``src_rank`` to ``dst_rank``."""
        if self.node_of(src_rank) == self.node_of(dst_rank):
            return self.intra_link
        return self.inter_link

    def rank_name(self, rank: int) -> str:
        node, d = divmod(rank, self.devices_per_node)
        return f"n{node}d{d}"

    def node_names(self) -> dict[int, str]:
        """Rank-id → display name, for finding attribution."""
        return {r: self.rank_name(r) for r in range(self.num_ranks)}

    def nodes(self) -> list[NodeSpec]:
        return [
            NodeSpec(id=node, name=f"node{node}",
                     num_devices=self.devices_per_node)
            for node in range(self.num_nodes)
        ]


@dataclass(frozen=True)
class BlockCyclicLayout:
    """2-D block-cyclic ownership of an ``n × n`` blocked matrix."""

    n: int
    block_size: int
    grid: tuple[int, int]
    blocks: BlockLayout = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "blocks", BlockLayout(self.n, self.block_size)
        )

    @property
    def num_blocks(self) -> int:
        return self.blocks.num_blocks

    def size(self, i: int) -> int:
        return self.blocks.size(i)

    def owner_node(self, i: int, j: int) -> int:
        pr, pc = self.grid
        return (i % pr) * pc + (j % pc)

    def owned_blocks(self, node: int):
        """Blocks owned by ``node``, in canonical (row-major) order."""
        for i in range(self.num_blocks):
            for j in range(self.num_blocks):
                if self.owner_node(i, j) == node:
                    yield i, j
