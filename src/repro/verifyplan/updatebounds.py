"""Closed-form transfer proofs for the dynamic-update schedules.

ROADMAP item 3 asks that incremental patches be scheduled through the IR
"so verifyplan proves the update's transfer volume is O(n²) not O(n³)".
This module holds that proof layer for the plans of
:mod:`repro.dynamic.patch`:

* **exact per-update bounds** — the batched-decrease sweep moves exactly
  ``(2nk + k²)`` panel elements up (the ``2n`` row/col panels per edge
  plus the ``k × k`` transition matrix), every ``dist`` block up once
  (``n²`` elements) and back once (``n²`` touched-block writeback); the
  increase pass uploads the updated CSR graph once (``8(n+1) + 16m``
  bytes) and writes back exactly the affected-region rectangles
  enumerated from the SSSP frontier (``|X| · n`` elements). Each bound
  is checked byte-for-byte against **both** the static IR tally and the
  dynamic transfer trace;

* **asymptotic gate** — total traffic must stay within ``4n²`` elements
  (constant independent of the block count ``n_d``; the engine caps
  decrease batches at ``k ≤ n/2`` so ``2n² + 2nk + k² ≤ 3.25n²``), and
  for out-of-core layouts (``n_d ≥ 2``) strictly below the blocked-FW
  re-solve volume — the update never degenerates to the stage-3
  ``O(n_d · n²)`` full pass;

* **patch soundness** — the statically planned touched-block set must
  (a) cover every block the dynamic patch actually changed, (b) write
  every planned block back to the host, and (c) fold the pivot panels
  (``fold_closure``/``fold_panel``) before any block kernel reads them.
  Each violated rule yields a :class:`SoundnessFinding` with block
  attribution; the seeded-defect suite in :mod:`repro.dynamic.verify`
  proves all three fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.verifyplan.bounds import BoundCheck, fw_exact_h2d_bytes
from repro.verifyplan.ir import CopyOp, KernelOp, PlanIR

if TYPE_CHECKING:  # imported lazily to keep verifyplan import-independent
    from repro.dynamic.patch import UpdatePlan

__all__ = [
    "SoundnessFinding",
    "check_patch_soundness",
    "decrease_h2d_bytes",
    "decrease_d2h_bytes",
    "increase_d2h_bytes",
    "ir_transfer_maps",
    "static_touched_blocks",
    "update_bound_checks",
]

_ELEM = 4  # DIST_DTYPE is float32


# ---------------------------------------------------------------------------
# exact closed forms
# ---------------------------------------------------------------------------
def decrease_h2d_bytes(n: int, k: int) -> int:
    """Upload volume of the batched decrease: the ``n×k`` column panel,
    the ``k×n`` row panel, the ``k×k`` transition matrix, and every
    ``dist`` block exactly once (``Σ bᵢ·bⱼ = n²``, ragged or not)."""
    return (2 * n * k + k * k + n * n) * _ELEM


def decrease_d2h_bytes(n: int) -> int:
    """Writeback volume of the decrease sweep: every block exactly once."""
    return n * n * _ELEM


def increase_d2h_bytes(n: int, num_affected: int) -> int:
    """Writeback volume of the increase pass: the affected-source rows."""
    return n * num_affected * _ELEM


# ---------------------------------------------------------------------------
# IR-side tallies
# ---------------------------------------------------------------------------
def ir_transfer_maps(ir: PlanIR) -> tuple[dict[tuple, int], dict[tuple, int]]:
    """Per-host-key byte totals of the IR's copies, split by direction."""
    h2d: dict[tuple, int] = {}
    d2h: dict[tuple, int] = {}
    for op in ir.ops:
        if isinstance(op, CopyOp):
            table = h2d if op.kind == "h2d" else d2h
            table[op.key] = table.get(op.key, 0) + op.access.nbytes
    return h2d, d2h


def static_touched_blocks(ir: PlanIR, num_blocks: int) -> frozenset[tuple[int, int]]:
    """Touched-block set derived from the IR alone: every block with a
    writeback (``("A", i, j)`` d2h) plus every block of a written-back
    affected block-row (``("rows", i)`` d2h)."""
    touched: set[tuple[int, int]] = set()
    for op in ir.ops:
        if isinstance(op, CopyOp) and op.kind == "d2h":
            if op.key[0] == "A":
                touched.add((int(op.key[1]), int(op.key[2])))
            elif op.key[0] == "rows":
                touched.update((int(op.key[1]), j) for j in range(num_blocks))
    return frozenset(touched)


# ---------------------------------------------------------------------------
# bound checks: closed form == IR tally == dynamic trace
# ---------------------------------------------------------------------------
def _direction_checks(
    prefix: str,
    source: str,
    expected_h2d: int,
    expected_d2h: int,
    tally: Mapping[str, Any],
    detail_h2d: str,
    detail_d2h: str,
) -> list[BoundCheck]:
    return [
        BoundCheck(
            name=f"{prefix}-h2d-{source}",
            expected=expected_h2d,
            actual=int(tally["bytes_h2d"]),
            mode="exact",
            detail=detail_h2d,
        ),
        BoundCheck(
            name=f"{prefix}-d2h-{source}",
            expected=expected_d2h,
            actual=int(tally["bytes_d2h"]),
            mode="exact",
            detail=detail_d2h,
        ),
    ]


def update_bound_checks(
    plan: "UpdatePlan",
    ir_tally: Mapping[str, Any],
    dyn_tally: Mapping[str, Any],
) -> list[BoundCheck]:
    """Exact closed-form bounds for one patch pass, proven against both
    the static IR tally and the dynamic trace, plus the O(n²) gates.

    Both tallies are mappings with ``bytes_h2d``/``bytes_d2h``/
    ``num_h2d``/``num_d2h`` (the IR side from
    :func:`repro.verifyplan.analyze.audit_ir`'s
    :class:`~repro.verifyplan.analyze.TransferTally`, the dynamic side
    from :func:`repro.dynamic.patch.trace_tally`).
    """
    n = plan.n
    nd = plan.num_blocks
    checks: list[BoundCheck] = []
    if plan.kind == "decrease":
        k = plan.k
        exp_h2d = decrease_h2d_bytes(n, k)
        exp_d2h = decrease_d2h_bytes(n)
        h2d_detail = "2nk panel + k² transition + n² block uploads, exact"
        d2h_detail = "n² touched-block writeback, every block exactly once"
        checks += _direction_checks(
            "decrease", "ir", exp_h2d, exp_d2h, ir_tally, h2d_detail, d2h_detail
        )
        checks += _direction_checks(
            "decrease", "trace", exp_h2d, exp_d2h, dyn_tally, h2d_detail, d2h_detail
        )
        checks.append(
            BoundCheck(
                name="decrease-num-writebacks",
                expected=nd * nd,
                actual=int(ir_tally["num_d2h"]),
                mode="exact",
                detail="one writeback per block of the n_d × n_d partition",
            )
        )
    else:
        exp_h2d = plan.csr_bytes
        # affected-region rectangle enumeration from the SSSP frontier:
        # one |rows_i| × n rectangle per affected block-row
        rects = [(i, len(plan.affected_in_row(i))) for i in plan.affected_block_rows]
        exp_d2h = sum(r * n for _i, r in rects) * _ELEM
        h2d_detail = "the updated CSR graph uploads exactly once"
        d2h_detail = (
            f"affected-region rectangles {[f'{r}x{n}' for _i, r in rects]}"
        )
        checks += _direction_checks(
            "increase", "ir", exp_h2d, exp_d2h, ir_tally, h2d_detail, d2h_detail
        )
        checks += _direction_checks(
            "increase", "trace", exp_h2d, exp_d2h, dyn_tally, h2d_detail, d2h_detail
        )
        checks.append(
            BoundCheck(
                name="increase-rect-enumeration",
                expected=increase_d2h_bytes(n, len(plan.affected_rows)),
                actual=exp_d2h,
                mode="exact",
                detail="block-row rectangles partition the |X|·n affected region",
            )
        )
        checks.append(
            BoundCheck(
                name="increase-num-writebacks",
                expected=len(plan.affected_block_rows),
                actual=int(ir_tally["num_d2h"]),
                mode="exact",
                detail="one strided writeback per affected block-row",
            )
        )
    total = int(ir_tally["bytes_h2d"]) + int(ir_tally["bytes_d2h"])
    # asymptotic gate 1: O(n²) with a constant independent of n_d. The
    # graph upload itself is O(n + m) ⊆ O(n²); the patch traffic proper
    # must fit in 4n² elements (decrease: 2n² + 2nk + k² ≤ 3.25n² for the
    # engine's k ≤ n/2 batch cap; increase: |X|·n ≤ n²).
    slack = plan.csr_bytes if plan.kind == "increase" else 0
    checks.append(
        BoundCheck(
            name="update-o-n2-gate",
            expected=4 * n * n * _ELEM + slack,
            actual=total,
            mode="at-most",
            detail="per-update traffic stays within 4·n² elements — O(n²), "
            "constant independent of the block count n_d",
        )
    )
    # asymptotic gate 2: in the out-of-core regime the patch must beat the
    # full blocked-FW re-solve it replaces (its stage-3 pass alone moves
    # O(n_d · n²) = O(n³ / b) bytes).
    if nd >= 2:
        sizes = [r1 - r0 for r0, r1 in plan.spans]
        resolve = fw_exact_h2d_bytes(sizes) + nd * n * n * _ELEM
        checks.append(
            BoundCheck(
                name="update-vs-resolve-gate",
                expected=resolve,
                actual=total,
                mode="at-most",
                detail="strictly below the blocked-FW re-solve volume: the "
                "patch never degenerates to the stage-3 O(n_d·n²) pass",
            )
        )
    return checks


# ---------------------------------------------------------------------------
# patch-soundness checker (all static; `changed_blocks` is the dynamic
# ground truth the over-approximation is proven against)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SoundnessFinding:
    """One violated patch-soundness rule, with block attribution."""

    kind: str
    block: tuple[int, int] | None
    detail: str

    def describe(self) -> str:
        where = f" at block {self.block}" if self.block is not None else ""
        return f"{self.kind}{where}: {self.detail}"


def check_patch_soundness(
    plan: "UpdatePlan",
    ir: PlanIR,
    changed_blocks: Iterable[tuple[int, int]],
) -> list[SoundnessFinding]:
    """Prove the schedule's touched-block over-approximation sound.

    Three rules, each caught statically from the IR:

    * ``uncovered-block`` — a block the dynamic patch changed has no
      writeback in the schedule (a *shrunken affected region* would ship
      stale host state);
    * ``missing-writeback`` — a block the plan declares touched is never
      downloaded (a *dropped writeback* silently loses device results);
    * ``stale-pivot-panel`` — a block kernel reads the shared panels
      before (or without) the ``fold_closure``/``fold_panel`` kernels
      that finalise them.
    """
    findings: list[SoundnessFinding] = []
    touched_static = static_touched_blocks(ir, plan.num_blocks)
    for block in sorted(set(changed_blocks)):
        if block not in touched_static:
            findings.append(
                SoundnessFinding(
                    kind="uncovered-block",
                    block=block,
                    detail="dynamically changed but outside the static "
                    "touched-block set — the schedule would ship stale bytes",
                )
            )
    for block in sorted(plan.touched_blocks()):
        if block not in touched_static:
            findings.append(
                SoundnessFinding(
                    kind="missing-writeback",
                    block=block,
                    detail="planned as touched but never written back to host",
                )
            )
    if plan.kind == "decrease":
        kernel_idx: dict[str, list[int]] = {
            "fold_closure": [], "fold_panel": [], "rank1_patch": [],
        }
        for pos, op in enumerate(ir.ops):
            if isinstance(op, KernelOp) and op.name in kernel_idx:
                kernel_idx[op.name].append(pos)
        first_patch = min(kernel_idx["rank1_patch"], default=None)
        for fold in ("fold_closure", "fold_panel"):
            positions = kernel_idx[fold]
            if first_patch is None:
                continue
            if not positions or min(positions) > first_patch:
                block = _block_of_kernel(ir, first_patch, plan)
                findings.append(
                    SoundnessFinding(
                        kind="stale-pivot-panel",
                        block=block,
                        detail=f"{fold} missing or ordered after the first "
                        "panel-reading block kernel — it would consume an "
                        "unfolded (stale) pivot panel",
                    )
                )
    return findings


def _block_of_kernel(
    ir: PlanIR, pos: int, plan: "UpdatePlan"
) -> tuple[int, int] | None:
    """Attribute a ``rank1_patch`` kernel position to its (i, j) block via
    the panel rectangles it reads (the block identity is not stored in
    the IR — it is recovered from the operand geometry)."""
    op = ir.ops[pos]
    if not isinstance(op, KernelOp):
        return None
    spans = plan.spans
    starts = {r0: i for i, (r0, r1) in enumerate(spans)}
    row = col = None
    for acc in op.reads:
        buf = ir.buffers[acc.buffer]
        if buf.name == "colpanel":
            row = starts.get(acc.rect.r0)
        elif buf.name == "rowpanel":
            col = starts.get(acc.rect.c0)
    if row is None or col is None:
        return None
    return (row, col)
