"""``verify_plan`` — the static plan verifier's public entry point.

For a graph/device pair, compile every algorithm's execution plan to a
symbolic :class:`~repro.verifyplan.ir.PlanIR` (via the ``emit_*_ir``
mirrors the drivers own), run the liveness / def-use / redundancy
analyses, and check the moved bytes against the paper's closed-form
bounds — all in milliseconds, before anything executes. Feasibility and
the derived parameters agree with :func:`repro.core.planner.explain_plan`
by construction (both call the same planning functions).

The result is a :class:`PlanVerification`: one :class:`PlanAudit` per
algorithm with the proven peak residency, transfer volumes, wasted bytes,
findings, and bound checks. ``python -m repro verify-plan`` prints it
(``--json`` for the machine-readable form) and exits non-zero when any
feasible plan fails verification.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.verifyplan.analyze import PlanFinding, TransferTally, audit_ir
from repro.verifyplan.bounds import (
    DEFAULT_TOLERANCE,
    BoundCheck,
    boundary_bound_checks,
    fw_bound_checks,
    johnson_bound_checks,
    multi_bound_checks,
)
from repro.verifyplan.hb import HBReport, analyze_hb, merge_hb_reports
from repro.verifyplan.timing import (
    TimingCalibration,
    TimingReport,
    predict_multi_timing,
    predict_timing,
)

__all__ = ["ALGORITHM_NAMES", "PlanAudit", "PlanVerification", "verify_plan"]

#: canonical algorithm keys, in report order
ALGORITHM_NAMES = ("floyd-warshall", "johnson", "boundary", "multi-gpu")

_ALIASES = {"fw": "floyd-warshall", "floyd_warshall": "floyd-warshall"}


def _fmt_bytes(b: int | float) -> str:
    if b >= 2**20:
        return f"{b / 2**20:.1f} MiB"
    return f"{b / 2**10:.1f} KiB"


@dataclass
class PlanAudit:
    """Everything the verifier proved about one algorithm's plan."""

    algorithm: str
    feasible: bool
    reason: str = ""
    parameters: dict = field(default_factory=dict)
    capacity: int = 0
    peak_bytes: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    num_h2d: int = 0
    num_d2h: int = 0
    num_ops: int = 0
    redundant_bytes: int = 0
    findings: list[PlanFinding] = field(default_factory=list)
    bounds: list[BoundCheck] = field(default_factory=list)
    hb: HBReport | None = None
    timing: TimingReport | None = None

    @property
    def verified(self) -> bool:
        """Feasible, no findings, every closed-form bound holds, and the
        happens-before check (race/deadlock/dead-event freedom) is clean."""
        return (
            self.feasible
            and not self.findings
            and all(b.ok for b in self.bounds)
            and (self.hb is None or self.hb.ok)
        )

    def describe(self) -> str:
        if not self.feasible:
            return f"{self.algorithm}: infeasible — {self.reason}"
        status = "VERIFIED" if self.verified else "FAILED"
        head = (
            f"{self.algorithm}: {status} — peak {_fmt_bytes(self.peak_bytes)} / "
            f"{_fmt_bytes(self.capacity)}, h2d {_fmt_bytes(self.bytes_h2d)} "
            f"({self.num_h2d} copies), d2h {_fmt_bytes(self.bytes_d2h)} "
            f"({self.num_d2h} copies), {self.redundant_bytes} redundant B, "
            f"{sum(b.ok for b in self.bounds)}/{len(self.bounds)} bounds ok"
        )
        lines = [head]
        lines += [f"    {f.describe()}" for f in self.findings]
        lines += [f"    {b.describe()}" for b in self.bounds if not b.ok]
        if self.hb is not None:
            hb_head = (
                f"hb: {self.hb.num_streams} stream(s), {self.hb.num_events} "
                f"event(s), {self.hb.num_waits} wait(s) — "
                + ("race/deadlock-free" if self.hb.ok
                   else f"{len(self.hb.findings)} finding(s)")
            )
            lines.append(f"    {hb_head}")
            lines += [f"      {f.describe()}" for f in self.hb.findings]
        if self.timing is not None:
            lines.append(
                f"    timing: predicted makespan {self.timing.makespan:.3e} s, "
                f"compute {self.timing.compute_seconds:.3e} s, overlap "
                f"efficiency {self.timing.overlap_efficiency:.0%}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "feasible": self.feasible,
            "verified": self.verified,
            "reason": self.reason,
            "parameters": dict(self.parameters),
            "capacity": self.capacity,
            "peak_bytes": self.peak_bytes,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "num_h2d": self.num_h2d,
            "num_d2h": self.num_d2h,
            "num_ops": self.num_ops,
            "redundant_bytes": self.redundant_bytes,
            "findings": [
                {**asdict(f), "block": list(f.block) if f.block else None}
                for f in self.findings
            ],
            "bounds": [asdict(b) | {"ok": b.ok} for b in self.bounds],
            "hb": self.hb.to_dict() if self.hb is not None else None,
            "timing": self.timing.to_dict() if self.timing is not None else None,
        }


@dataclass
class PlanVerification:
    """Audits of every requested algorithm for one graph/device pair."""

    n: int
    m: int
    device: str
    audits: dict[str, PlanAudit] = field(default_factory=dict)

    @property
    def feasible_audits(self) -> list[PlanAudit]:
        return [a for a in self.audits.values() if a.feasible]

    @property
    def ok(self) -> bool:
        """At least one plan is feasible and every feasible plan verifies."""
        feasible = self.feasible_audits
        return bool(feasible) and all(a.verified for a in feasible)

    def describe(self) -> str:
        lines = [
            f"plan verifier [{self.device}]: graph n={self.n}, m={self.m} — "
            + ("all feasible plans verified" if self.ok else "verification FAILED")
        ]
        lines += ["  " + a.describe() for a in self.audits.values()]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "device": self.device,
            "ok": self.ok,
            "audits": {name: a.to_dict() for name, a in self.audits.items()},
        }


def _merge_audit(
    audit: PlanAudit, peak: int, tally: TransferTally, findings: list[PlanFinding]
) -> None:
    audit.peak_bytes = max(audit.peak_bytes, peak)
    audit.bytes_h2d += tally.bytes_h2d
    audit.bytes_d2h += tally.bytes_d2h
    audit.num_h2d += tally.num_h2d
    audit.num_d2h += tally.num_d2h
    audit.redundant_bytes += tally.redundant_bytes
    audit.findings.extend(findings)


def _audit_fw(
    graph, spec, overlap: bool, tolerance: float,
    timing: bool, calibration: TimingCalibration | None,
) -> PlanAudit:
    from repro.core.ooc_fw import emit_fw_ir, plan_fw_block_size
    from repro.core.tiling import BlockLayout
    from repro.gpu.errors import OutOfMemoryError

    n = graph.num_vertices
    audit = PlanAudit("floyd-warshall", True, capacity=spec.memory_bytes)
    try:
        b = plan_fw_block_size(n, spec, overlap=overlap)
    except (ValueError, OutOfMemoryError) as exc:  # pragma: no cover - tiny devices
        return PlanAudit("floyd-warshall", False, reason=str(exc))
    layout = BlockLayout(n, b)
    nd = layout.num_blocks
    audit.parameters = {"block_size": b, "num_blocks": nd}
    ir = emit_fw_ir(n, spec, block_size=b, overlap=overlap)
    audit.num_ops = ir.num_ops
    _merge_audit(audit, *audit_ir(ir))
    audit.bounds = fw_bound_checks(
        n, nd, audit.bytes_h2d, audit.bytes_d2h, tolerance=tolerance,
        block_sizes=[layout.size(i) for i in range(nd)], overlap=overlap,
    )
    audit.hb = analyze_hb(ir)
    if timing:
        audit.timing = predict_timing(ir, spec, calibration=calibration)
    return audit


def _audit_johnson(
    graph, spec, overlap: bool, timing: bool, calibration: TimingCalibration | None
) -> PlanAudit:
    from repro.core.ooc_johnson import (
        collect_mssp_workloads,
        emit_johnson_ir,
        plan_batch_size,
    )
    from repro.gpu.errors import OutOfMemoryError

    n, m = graph.num_vertices, graph.num_edges
    audit = PlanAudit("johnson", True, capacity=spec.memory_bytes)
    nbuf = 2 if overlap else 1
    try:
        bat = plan_batch_size(graph, spec, num_row_buffers=nbuf)
    except OutOfMemoryError as exc:
        return PlanAudit("johnson", False, reason=str(exc))
    bat = max(1, min(bat, n))
    audit.parameters = {"batch_size": bat, "num_batches": -(-n // bat)}
    # the symbolic timing pass needs the per-batch MSSP workloads (the
    # kernel cost is workload-dependent); skip the CPU-side frontier
    # simulation when timing was not requested
    workloads = (
        collect_mssp_workloads(graph, batch_size=bat) if timing else None
    )
    ir = emit_johnson_ir(
        graph, spec, batch_size=bat, overlap=overlap, workloads=workloads
    )
    audit.num_ops = ir.num_ops
    _merge_audit(audit, *audit_ir(ir))
    audit.bounds = johnson_bound_checks(
        n, m, bat, audit.bytes_h2d, audit.bytes_d2h, audit.num_d2h
    )
    audit.hb = analyze_hb(ir)
    if timing:
        audit.timing = predict_timing(ir, spec, calibration=calibration)
    return audit


def _audit_boundary(
    graph, spec, overlap: bool, batch_transfers: bool, seed: int,
    timing: bool, calibration: TimingCalibration | None,
) -> PlanAudit:
    from repro.core.ooc_boundary import (
        BoundaryInfeasibleError,
        emit_boundary_ir,
        plan_boundary,
    )

    n = graph.num_vertices
    audit = PlanAudit("boundary", True, capacity=spec.memory_bytes)
    try:
        plan = plan_boundary(
            graph, spec, batch_transfers=batch_transfers, overlap=overlap, seed=seed
        )
    except BoundaryInfeasibleError as exc:
        return PlanAudit("boundary", False, reason=exc.detail)
    batched = batch_transfers and plan.n_row >= 1
    audit.parameters = {
        "num_components": plan.num_components,
        "num_boundary": plan.num_boundary,
        "max_component": plan.max_component,
        "n_row": plan.n_row,
        "buffers": plan.num_buffers,
        "batched": batched,
    }
    ir = emit_boundary_ir(
        graph, spec, plan=plan, batch_transfers=batch_transfers, overlap=overlap
    )
    audit.num_ops = ir.num_ops
    peak, tally, findings = audit_ir(ir)
    _merge_audit(audit, peak, tally, findings)
    flushes = tally.d2h_by_key.get("host-rows", 0) + tally.d2h_by_key.get("host-block", 0)
    audit.bounds = boundary_bound_checks(
        plan, n, audit.bytes_h2d, audit.bytes_d2h, flushes, batched=batched
    )
    audit.hb = analyze_hb(ir)
    if timing:
        audit.timing = predict_timing(ir, spec, calibration=calibration)
    return audit


def _audit_multi(
    graph, spec, num_devices: int, seed: int,
    timing: bool, calibration: TimingCalibration | None,
) -> PlanAudit:
    from repro.core.multi_gpu import emit_multi_ir
    from repro.core.ooc_boundary import BoundaryInfeasibleError, plan_boundary

    n = graph.num_vertices
    audit = PlanAudit("multi-gpu", True, capacity=spec.memory_bytes)
    try:
        plan = plan_boundary(graph, spec, seed=seed)
    except BoundaryInfeasibleError as exc:
        return PlanAudit("multi-gpu", False, reason=exc.detail)
    audit.parameters = {
        "num_devices": num_devices,
        "num_components": plan.num_components,
        "num_boundary": plan.num_boundary,
        "max_component": plan.max_component,
    }
    irs = emit_multi_ir(graph, spec, num_devices, plan=plan)
    for ir in irs:
        audit.num_ops += ir.num_ops
        _merge_audit(audit, *audit_ir(ir))
    audit.bounds = multi_bound_checks(
        plan, n, num_devices, audit.bytes_h2d, audit.bytes_d2h
    )
    audit.hb = merge_hb_reports([analyze_hb(ir) for ir in irs])
    if timing:
        audit.timing = predict_multi_timing(irs, spec, calibration=calibration)
    return audit


def verify_plan(
    graph,
    spec,
    *,
    algorithms=None,
    seed: int = 0,
    overlap: bool = True,
    batch_transfers: bool = True,
    num_devices: int = 2,
    tolerance: float = DEFAULT_TOLERANCE,
    timing: bool = False,
    calibration: TimingCalibration | None = None,
) -> PlanVerification:
    """Statically verify every algorithm's execution plan for ``graph`` on
    a device with ``spec``.

    ``algorithms`` selects a subset of :data:`ALGORITHM_NAMES` (``"fw"``
    is accepted as an alias); the default verifies all four drivers.
    Infeasible algorithms are reported (with the planner's reason), not
    failed — ``PlanVerification.ok`` requires every *feasible* plan to
    verify and at least one to be feasible.

    Every audit now includes a happens-before check (``PlanAudit.hb``)
    proving the schedule race-, deadlock- and dead-event-free in every
    interleaving; ``PlanAudit.verified`` requires it to be clean. With
    ``timing=True`` the symbolic critical-path pass also runs, attaching
    a :class:`~repro.verifyplan.timing.TimingReport` (predicted makespan,
    per-engine busy time, overlap efficiency, critical path) per
    algorithm; ``calibration`` optionally re-rates the device model from
    measured benchmarks (:meth:`TimingCalibration.from_bench`).
    """
    names = list(algorithms) if algorithms else list(ALGORITHM_NAMES)
    verification = PlanVerification(
        n=graph.num_vertices, m=graph.num_edges, device=spec.name
    )
    for raw in names:
        name = _ALIASES.get(raw, raw)
        if name == "floyd-warshall":
            audit = _audit_fw(graph, spec, overlap, tolerance, timing, calibration)
        elif name == "johnson":
            audit = _audit_johnson(graph, spec, overlap, timing, calibration)
        elif name == "boundary":
            audit = _audit_boundary(
                graph, spec, overlap, batch_transfers, seed, timing, calibration
            )
        elif name == "multi-gpu":
            audit = _audit_multi(graph, spec, num_devices, seed, timing, calibration)
        else:
            raise ValueError(
                f"unknown algorithm {raw!r}; choose from {ALGORITHM_NAMES}"
            )
        verification.audits[name] = audit
    return verification
