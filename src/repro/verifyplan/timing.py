"""Symbolic critical-path timing over the schedule IR.

Where :mod:`repro.verifyplan.hb` proves a schedule *correct*, this module
predicts how *fast* it is — without instantiating a device. It replays a
:class:`~repro.verifyplan.ir.PlanIR` through the exact clock discipline
of the simulated runtime (:mod:`repro.gpu.stream` /
:mod:`repro.gpu.timeline`): one serialising engine per DMA direction
plus one compute engine, per-stream readiness, a host clock that pays
``kernel_launch_overhead`` per enqueue and is floored by synchronous
copies, and event ``record``/``wait`` timestamp propagation. Durations
come from the :class:`~repro.gpu.device.DeviceSpec` roofline cost models
(:mod:`repro.gpu.kernels`) and the transfer model
(:mod:`repro.gpu.transfer`) — so on a faithful emitter the predicted
makespan *equals* the dynamic trace's simulated makespan, and the tests
hold it to within 10% (exactly, for FW) on the standard configurations.

On top of the replay the pass derives:

* the **critical path** — each scheduled op remembers which predecessor
  (stream, host, or engine occupancy) bound its start time; backtracking
  from the makespan-achieving op yields the chain of ops that actually
  determines the runtime;
* **overlap efficiency** — where the makespan sits between the fully
  serialised schedule (sum of all durations) and the ideal bound (the
  busiest engine): 1.0 means copies hide perfectly behind compute,
  0.0 means no overlap was won at all;
* per-engine busy seconds, which feed the selector's analytic cost
  estimates (:mod:`repro.select.cost_models`).

:class:`TimingCalibration` optionally rescales the spec's rates from the
measured ``BENCH_kernels.json`` sweep so the same DAG can predict host
wall-clock instead of the simulated device; by default no calibration is
applied and predictions target the simulated device exactly.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import extract_cost, fw_tile_cost, minplus_cost
from repro.gpu.transfer import copy_duration, copy_duration_2d
from repro.verifyplan.ir import (
    AllocOp,
    BarrierOp,
    CopyOp,
    FreeOp,
    KernelOp,
    LinkSpec,
    PlanIR,
    RecordOp,
    RecvOp,
    SendOp,
    WaitOp,
)

__all__ = [
    "CriticalSegment",
    "TimingCalibration",
    "TimingReport",
    "kernel_duration",
    "predict_cluster_timing",
    "predict_multi_timing",
    "predict_timing",
]

_ENGINES = ("compute", "h2d", "d2h")
_FW_KERNELS = frozenset({"fw_diag", "fw_comp", "fw_bound"})
_EXTRACT_KERNELS = frozenset({"extract_c2b", "extract_b2c"})


def kernel_duration(op: KernelOp, spec: DeviceSpec) -> float:
    """Modelled duration of one IR kernel launch, from its operand rects.

    Mirrors what each driver passes to ``stream.launch(cost=...)``: FW
    tile closures price by the written tile, extractions by bytes moved,
    and min-plus products reconstruct ``(bi, bk, bj)`` from the written
    rectangle plus the first read that is not the accumulator itself.
    Data-dependent kernels (Johnson's ``mssp``) must carry an explicit
    ``cost``.
    """
    if op.cost is not None:
        return float(op.cost)
    if not op.writes:
        raise ValueError(f"kernel {op.name!r} declares no writes — cannot price it")
    out = op.writes[0]
    if op.name in _FW_KERNELS:
        return fw_tile_cost(spec, out.rect.rows)
    if op.name in _EXTRACT_KERNELS:
        return extract_cost(spec, out.rect.rows, out.rect.cols)
    if op.name.startswith("mp_"):
        bi, bj = out.rect.rows, out.rect.cols
        operands = [
            r for r in op.reads
            if not (r.buffer == out.buffer and r.rect == out.rect)
        ]
        for read in operands:
            if read.rect.rows == bi:
                return minplus_cost(spec, bi, read.rect.cols, bj)
            if read.rect.cols == bj:
                return minplus_cost(spec, bi, read.rect.rows, bj)
        raise ValueError(
            f"kernel {op.name!r}: no read operand conforms with the "
            f"{bi}×{bj} write — cannot infer the inner dimension"
        )
    raise ValueError(
        f"kernel {op.name!r} has no cost model — attach cost= at emission"
    )


@dataclass(frozen=True)
class CriticalSegment:
    """One op on the critical path."""

    name: str
    engine: str
    stream: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _TimedOp:
    index: int
    name: str
    engine: str
    stream: str
    start: float
    end: float
    pred: int  # index into the timed-op list, or -1


class _DeviceState:
    """Replay clocks for one device — the static twin of ``Device``."""

    def __init__(self) -> None:
        self.host_ready = 0.0
        self.host_src = -1
        self.stream_ready: dict[str, float] = {}
        self.stream_src: dict[str, int] = {}
        self.engine_ready: dict[str, float] = {e: 0.0 for e in _ENGINES}
        self.engine_src: dict[str, int] = {e: -1 for e in _ENGINES}
        self.event_time: dict[int, float] = {}
        self.event_src: dict[int, int] = {}
        self.busy: dict[str, float] = {e: 0.0 for e in _ENGINES}
        self.timed: list[_TimedOp] = []

    @property
    def elapsed(self) -> float:
        return max(self.host_ready, max(self.engine_ready.values()))

    def advance_to(self, t: float) -> None:
        """Fleet barrier: floor every clock at ``t`` (timeline.advance_to
        plus the per-stream/host floors ``_barrier`` applies)."""
        if t > self.host_ready:
            self.host_ready = t
            self.host_src = -1
        for engine in _ENGINES:
            if t > self.engine_ready[engine]:
                self.engine_ready[engine] = t
                self.engine_src[engine] = -1
        for stream in self.stream_ready:
            if t > self.stream_ready[stream]:
                self.stream_ready[stream] = t
                self.stream_src[stream] = -1

    def _schedule(self, name: str, engine: str, stream: str,
                  duration: float) -> _TimedOp:
        contributors = (
            (self.stream_ready.get(stream, 0.0), self.stream_src.get(stream, -1)),
            (self.host_ready, self.host_src),
            (self.engine_ready[engine], self.engine_src[engine]),
        )
        start, pred = max(contributors, key=lambda c: c[0])
        end = start + duration
        op = _TimedOp(
            index=len(self.timed), name=name, engine=engine, stream=stream,
            start=start, end=end, pred=pred,
        )
        self.timed.append(op)
        self.stream_ready[stream] = end
        self.stream_src[stream] = op.index
        self.engine_ready[engine] = end
        self.engine_src[engine] = op.index
        self.busy[engine] += duration
        return op

    def replay(self, ir: PlanIR, spec: DeviceSpec) -> None:
        for op in ir.ops:
            if isinstance(op, (AllocOp, FreeOp)):
                continue  # alloc/free touch no runtime clock
            if isinstance(op, BarrierOp):
                self.advance_to(self.elapsed)
            elif isinstance(op, KernelOp):
                if op.annotate:
                    continue  # sanitizer-only: no timeline slot, no overhead
                duration = kernel_duration(op, spec)
                # launch pays the enqueue overhead on the host *before*
                # computing its start bound (Stream.launch)
                self.host_ready += spec.kernel_launch_overhead
                self._schedule(op.name, "compute", op.stream, duration)
            elif isinstance(op, CopyOp):
                buf = ir.buffers[op.access.buffer]
                if op.strided:
                    duration = copy_duration_2d(
                        spec, op.access.rect.rows,
                        op.access.rect.cols * buf.itemsize,
                    )
                else:
                    duration = copy_duration(spec, op.access.nbytes)
                timed = self._schedule(op.kind, op.kind, op.stream, duration)
                if op.sync:
                    if timed.end > self.host_ready:
                        self.host_ready = timed.end
                        self.host_src = timed.index
                else:
                    self.host_ready += spec.kernel_launch_overhead
            elif isinstance(op, RecordOp):
                self.event_time[op.event] = self.stream_ready.get(op.stream, 0.0)
                self.event_src[op.event] = self.stream_src.get(op.stream, -1)
            elif isinstance(op, WaitOp):
                # an unrecorded event carries time 0.0 — a no-op, like
                # waiting a default-constructed Event in the runtime
                t = self.event_time.get(op.event, 0.0)
                if t > self.stream_ready.get(op.stream, 0.0):
                    self.stream_ready[op.stream] = t
                    self.stream_src[op.stream] = self.event_src.get(op.event, -1)

    def critical_path(self) -> list[CriticalSegment]:
        if self.host_ready >= max(self.engine_ready.values()):
            cursor = self.host_src
        else:
            engine = max(self.engine_ready, key=lambda e: self.engine_ready[e])
            cursor = self.engine_src[engine]
        path: list[CriticalSegment] = []
        while cursor >= 0:
            op = self.timed[cursor]
            path.append(CriticalSegment(
                name=op.name, engine=op.engine, stream=op.stream,
                start=op.start, end=op.end,
            ))
            cursor = op.pred
        path.reverse()
        return path


@dataclass
class TimingReport:
    """Predicted schedule timing for one driver on one device (fleet)."""

    algorithm: str
    device: str
    makespan: float
    compute_seconds: float
    h2d_seconds: float
    d2h_seconds: float
    serial_seconds: float
    overlap_efficiency: float
    num_timed_ops: int
    #: busy seconds on the modelled interconnect links (cluster plans only)
    net_seconds: float = 0.0
    critical_path: list[CriticalSegment] = field(default_factory=list)

    @property
    def transfer_seconds(self) -> float:
        return self.h2d_seconds + self.d2h_seconds

    def _critical_top(self, limit: int = 5) -> list[dict]:
        by_kind: dict[tuple[str, str], float] = {}
        for seg in self.critical_path:
            key = (seg.engine, seg.name)
            by_kind[key] = by_kind.get(key, 0.0) + seg.duration
        ranked = sorted(by_kind.items(), key=lambda kv: kv[1], reverse=True)
        return [
            {"engine": engine, "name": name, "seconds": seconds}
            for (engine, name), seconds in ranked[:limit]
        ]

    def describe(self) -> str:
        lines = [
            f"{self.algorithm} on {self.device}: predicted makespan "
            f"{self.makespan:.6f}s over {self.num_timed_ops} timed ops",
            f"  busy: compute {self.compute_seconds:.6f}s, "
            f"h2d {self.h2d_seconds:.6f}s, d2h {self.d2h_seconds:.6f}s"
            + (f", net {self.net_seconds:.6f}s" if self.net_seconds else "")
            + f" (serialised {self.serial_seconds:.6f}s)",
            f"  overlap efficiency {self.overlap_efficiency:.2f}, "
            f"critical path {len(self.critical_path)} op(s)",
        ]
        for entry in self._critical_top(3):
            lines.append(
                f"    critical: {entry['name']}@{entry['engine']} "
                f"{entry['seconds']:.6f}s"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "device": self.device,
            "makespan_seconds": self.makespan,
            "compute_seconds": self.compute_seconds,
            "h2d_seconds": self.h2d_seconds,
            "d2h_seconds": self.d2h_seconds,
            "net_seconds": self.net_seconds,
            "serial_seconds": self.serial_seconds,
            "overlap_efficiency": self.overlap_efficiency,
            "num_timed_ops": self.num_timed_ops,
            "critical_path_length": len(self.critical_path),
            "critical_path_seconds": sum(s.duration for s in self.critical_path),
            "critical_path_top": self._critical_top(),
        }


def _overlap_efficiency(serial: float, max_busy: float, makespan: float) -> float:
    slack = serial - max_busy
    if slack <= 0.0:
        return 1.0
    return min(1.0, max(0.0, (serial - makespan) / slack))


def _report_from_states(
    algorithm: str, device: str, states: list[_DeviceState], makespan: float
) -> TimingReport:
    busy = {e: sum(st.busy[e] for st in states) for e in _ENGINES}
    serial = sum(busy.values())
    max_busy = max(
        max(st.busy[e] for e in _ENGINES) for st in states
    )
    binding = max(states, key=lambda st: st.elapsed)
    return TimingReport(
        algorithm=algorithm,
        device=device,
        makespan=makespan,
        compute_seconds=busy["compute"],
        h2d_seconds=busy["h2d"],
        d2h_seconds=busy["d2h"],
        serial_seconds=serial,
        overlap_efficiency=_overlap_efficiency(serial, max_busy, makespan),
        num_timed_ops=sum(len(st.timed) for st in states),
        critical_path=binding.critical_path(),
    )


def predict_timing(
    ir: PlanIR,
    spec: DeviceSpec,
    *,
    calibration: "TimingCalibration | None" = None,
) -> TimingReport:
    """Statically predict the simulated makespan of one driver's IR."""
    if calibration is not None:
        spec = calibration.apply(spec)
    state = _DeviceState()
    state.replay(ir, spec)
    return _report_from_states(ir.algorithm, ir.device, [state], state.elapsed)


def predict_multi_timing(
    irs: list[PlanIR],
    spec: DeviceSpec,
    *,
    calibration: "TimingCalibration | None" = None,
) -> TimingReport:
    """Replay per-device IRs with fleet barriers (``multi_gpu._barrier``).

    Each device's op list is split at its :class:`BarrierOp`\\ s; after
    every segment all devices' clocks are floored at the fleet-wide
    elapsed time, exactly as the driver's ``_barrier`` does.
    """
    if not irs:
        raise ValueError("predict_multi_timing needs at least one device IR")
    if calibration is not None:
        spec = calibration.apply(spec)

    segmented: list[list[list]] = []
    for ir in irs:
        segments: list[list] = [[]]
        for op in ir.ops:
            if isinstance(op, BarrierOp):
                segments.append([])
            else:
                segments[-1].append(op)
        segmented.append(segments)
    num_segments = max(len(s) for s in segmented)
    for segments in segmented:
        segments.extend([] for _ in range(num_segments - len(segments)))

    states = [_DeviceState() for _ in irs]
    t = 0.0
    for seg_index in range(num_segments):
        for state, ir, segments in zip(states, irs, segmented):
            partial = dataclasses.replace(ir, ops=tuple(segments[seg_index]))
            state.replay(partial, spec)
        t = max(state.elapsed for state in states)
        for state in states:
            state.advance_to(t)
    device = f"{irs[0].device.split('#')[0]}×{len(irs)}"
    return _report_from_states(irs[0].algorithm, device, states, t)


def predict_cluster_timing(
    irs: list[PlanIR],
    spec: DeviceSpec,
    *,
    link_of,
    calibration: "TimingCalibration | None" = None,
) -> TimingReport:
    """Replay per-rank cluster IRs under the α–β interconnect model.

    ``link_of(src, dst)`` maps a directed rank pair to the
    :class:`~repro.verifyplan.ir.LinkSpec` carrying their traffic. The
    replay uses the exact clock discipline of the dynamic cluster
    simulator (:mod:`repro.cluster.simulate`), with eager-buffered sends:

    * a **send** occupies the directed link as an engine of the sending
      rank: ``start = max(stream, host, link_ready)``,
      ``end = start + α + nbytes/β``; the wire time is charged entirely
      on the sender/link side and the message's *arrival time* is ``end``;
    * a **recv** floors the receiving stream's clock at the FIFO-matched
      arrival time and costs nothing itself;
    * a :class:`~repro.verifyplan.ir.BarrierOp` is a fleet barrier
      flooring every rank's clocks at the fleet-wide elapsed time.

    Every transfer's end time is a fixed function of its predecessors
    (sender clocks + per-link FIFO order), so the replay is
    processing-order independent and matches the simulator's makespan
    **exactly** — the scaling curves the two produce are the same curve.
    """
    if not irs:
        raise ValueError("predict_cluster_timing needs at least one rank IR")
    if calibration is not None:
        spec = calibration.apply(spec)
    states = [_DeviceState() for _ in irs]
    pos = [0] * len(irs)
    #: (src, dst, tag) -> FIFO of arrival times
    arrivals: dict[tuple[int, int, str], list[float]] = {}

    def run_rank(i: int) -> bool:
        """Advance rank ``i`` until blocked; True if any op was processed."""
        st, ir = states[i], irs[i]
        moved = False
        while pos[i] < len(ir.ops):
            op = ir.ops[pos[i]]
            if isinstance(op, BarrierOp):
                break
            if isinstance(op, SendOp):
                link: LinkSpec = link_of(ir.rank, op.dst)
                engine = f"net:{ir.rank}->{op.dst}"
                st.engine_ready.setdefault(engine, 0.0)
                st.engine_src.setdefault(engine, -1)
                st.busy.setdefault(engine, 0.0)
                timed = st._schedule(
                    f"send:{op.tag}", engine, op.stream,
                    link.duration(op.access.nbytes),
                )
                arrivals.setdefault((ir.rank, op.dst, op.tag), []).append(
                    timed.end
                )
            elif isinstance(op, RecvOp):
                queue = arrivals.get((op.src, ir.rank, op.tag))
                if not queue:
                    break  # sender has not issued the message yet
                arrival = queue.pop(0)
                if arrival > st.stream_ready.get(op.stream, 0.0):
                    st.stream_ready[op.stream] = arrival
                    st.stream_src[op.stream] = -1
            else:
                partial = dataclasses.replace(ir, ops=(op,))
                st.replay(partial, spec)
            pos[i] += 1
            moved = True
        return moved

    while True:
        progressed = False
        for i in range(len(irs)):
            if run_rank(i):
                progressed = True
        if all(pos[i] >= len(ir.ops) for i, ir in enumerate(irs)):
            break
        at_barrier = [
            i for i, ir in enumerate(irs)
            if pos[i] < len(ir.ops) and isinstance(ir.ops[pos[i]], BarrierOp)
        ]
        if at_barrier and all(
            pos[i] >= len(ir.ops) or isinstance(ir.ops[pos[i]], BarrierOp)
            for i, ir in enumerate(irs)
        ):
            t = max(st.elapsed for st in states)
            for st in states:
                st.advance_to(t)
            for i in at_barrier:
                pos[i] += 1
            continue
        if not progressed:
            raise ValueError(
                "cluster timing: schedule deadlocks — run analyze_cluster_hb"
            )

    makespan = max(st.elapsed for st in states)
    busy = {e: sum(st.busy[e] for st in states) for e in _ENGINES}
    net = sum(
        seconds
        for st in states
        for engine, seconds in st.busy.items()
        if engine.startswith("net:")
    )
    serial = busy["compute"] + busy["h2d"] + busy["d2h"] + net
    max_busy = max(
        max(seconds for seconds in st.busy.values()) for st in states
    )
    binding = max(states, key=lambda st: st.elapsed)
    device = f"{irs[0].device.split('#')[0]}×{len(irs)}"
    return TimingReport(
        algorithm=irs[0].algorithm,
        device=device,
        makespan=makespan,
        compute_seconds=busy["compute"],
        h2d_seconds=busy["h2d"],
        d2h_seconds=busy["d2h"],
        serial_seconds=serial,
        overlap_efficiency=_overlap_efficiency(serial, max_busy, makespan),
        num_timed_ops=sum(len(st.timed) for st in states),
        net_seconds=net,
        critical_path=binding.critical_path(),
    )


@dataclass(frozen=True)
class TimingCalibration:
    """Optional rate overrides for the timing pass.

    ``from_bench`` derives them from the measured sweeps checked into the
    repo: the **autotuned winner** for this machine's fingerprint in
    ``BENCH_kernels.json`` (``python -m repro tune-kernels``) replaces the
    simulated ``minplus_rate`` (so the DAG predicts host wall-clock off
    the kernel that will actually run); with no tuned entry, the best
    bit-identical sweep row is the fallback. ``BENCH_transfers.json`` is
    cross-checked to exist as the transfer-volume baseline the DAG's copy
    set must match. With no calibration the pass targets the simulated
    device exactly.
    """

    minplus_rate: float | None = None

    def apply(self, spec: DeviceSpec) -> DeviceSpec:
        if self.minplus_rate is None:
            return spec
        return dataclasses.replace(spec, minplus_rate=self.minplus_rate)

    @classmethod
    def from_bench(
        cls,
        kernels_path: Path | str | None = None,
        transfers_path: Path | str | None = None,
    ) -> "TimingCalibration":
        root = Path(__file__).resolve().parents[3]
        kernels_path = Path(kernels_path) if kernels_path else root / "BENCH_kernels.json"
        if transfers_path is not None and not Path(transfers_path).exists():
            raise FileNotFoundError(transfers_path)
        # the autotuned winner for this machine's fingerprint wins: it is
        # the rate of the kernel config the engine will actually select
        try:
            from repro.bench.kernels import tuned_minplus_gops

            tuned = tuned_minplus_gops(kernels_path)
        except Exception:
            tuned = None
        if tuned:
            return cls(minplus_rate=tuned * 1e9)
        best_gops = 0.0
        if kernels_path.exists():
            payload = json.loads(kernels_path.read_text())
            for row in payload.get("rows", []):
                gops = float(row.get("gops", 0.0))
                if row.get("identical", True) and gops > best_gops:
                    best_gops = gops
        if best_gops <= 0.0:
            return cls()
        return cls(minplus_rate=best_gops * 1e9)
