"""Static plan verifier: prove OOC schedules correct before anything runs.

The dynamic schedule sanitizer (:mod:`repro.sanitize`) watches a *real*
run; this package proves the same properties at *compile time*. Each OOC
driver exposes an ``emit_*_ir`` mirror that compiles its execution plan
into a symbolic :class:`~repro.verifyplan.ir.PlanIR` — allocations,
H2D/D2H copies, and kernel def/use sets — without touching a device.
Three analyses then run over the IR:

- **residency** — peak charged bytes via a liveness walk, proven ≤ the
  :class:`~repro.gpu.device.DeviceSpec` capacity;
- **def-use** — every kernel operand is defined (written or uploaded)
  on-device before it is read;
- **redundancy** — uploads of already-resident unmodified blocks and
  repeated downloads of untouched regions, reported as wasted bytes.

Finally the tallied transfer volumes are checked against the paper's
closed-form bounds (FW ≈ ``n_d·n²`` elements per direction group,
Johnson's exact CSR + row-batch totals, the boundary method's ``N_row``
output batching). Two independent analyses, one contract: the tests in
``tests/test_verifyplan.py`` assert byte-for-byte agreement between
these static predictions and the dynamic trace of real runs.

Entry points: :func:`verify_plan` / ``python -m repro verify-plan``.
"""

from repro.verifyplan.analyze import (
    PlanFinding,
    TransferTally,
    analyze_def_use,
    analyze_residency,
    analyze_transfers,
    audit_ir,
)
from repro.verifyplan.bounds import DEFAULT_TOLERANCE, BoundCheck
from repro.verifyplan.ir import (
    AllocOp,
    CopyOp,
    FreeOp,
    IREmitter,
    KernelOp,
    PlanIR,
    Rect,
    SymBuffer,
)
from repro.verifyplan.verifier import (
    ALGORITHM_NAMES,
    PlanAudit,
    PlanVerification,
    verify_plan,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AllocOp",
    "BoundCheck",
    "CopyOp",
    "DEFAULT_TOLERANCE",
    "FreeOp",
    "IREmitter",
    "KernelOp",
    "PlanAudit",
    "PlanFinding",
    "PlanIR",
    "PlanVerification",
    "Rect",
    "SymBuffer",
    "TransferTally",
    "analyze_def_use",
    "analyze_residency",
    "analyze_transfers",
    "audit_ir",
    "verify_plan",
]
