"""Static plan verifier: prove OOC schedules correct before anything runs.

The dynamic schedule sanitizer (:mod:`repro.sanitize`) watches a *real*
run; this package proves the same properties at *compile time*. Each OOC
driver exposes an ``emit_*_ir`` mirror that compiles its execution plan
into a symbolic :class:`~repro.verifyplan.ir.PlanIR` — allocations,
H2D/D2H copies, kernel def/use sets, and (new) the driver's stream,
event-record/wait, and barrier structure — without touching a device.
Five analyses then run over the IR:

- **residency** — peak charged bytes via a liveness walk, proven ≤ the
  :class:`~repro.gpu.device.DeviceSpec` capacity;
- **def-use** — every kernel operand is defined (written or uploaded)
  on-device before it is read;
- **redundancy** — uploads of already-resident unmodified blocks and
  repeated downloads of untouched regions, reported as wasted bytes;
- **happens-before** (:mod:`~repro.verifyplan.hb`) — a vector-clock
  model checker proving every byte-overlapping conflicting access pair
  ordered in *every* legal interleaving, every wait satisfiable
  (deadlock-freedom), and no recorded event dead;
- **timing** (:mod:`~repro.verifyplan.timing`) — a symbolic replay of
  the device clock discipline yielding the critical path, predicted
  makespan, and copy/compute overlap efficiency per algorithm.

Finally the tallied transfer volumes are checked against the paper's
closed-form bounds (FW ≈ ``n_d·n²`` elements per direction group,
Johnson's exact CSR + row-batch totals, the boundary method's ``N_row``
output batching). Independent analyses, one contract: the tests in
``tests/test_verifyplan.py`` and ``tests/test_hb_timing.py`` assert
agreement between these static predictions and the dynamic traces and
simulated clocks of real runs.

The same machinery scales past one host: the distributed schedules of
:mod:`repro.cluster` lower their collectives to point-to-point
:class:`~repro.verifyplan.ir.SendOp`/:class:`~repro.verifyplan.ir.RecvOp`
pairs, :func:`analyze_cluster_hb` proves them ordered and matched across
nodes in every interleaving, :mod:`~repro.verifyplan.commbounds` proves
the per-link byte counts equal the closed-form 2-D block-cyclic volumes,
and :func:`predict_cluster_timing` replays the fleet under an α–β link
model.

Incremental schedules get the same treatment:
:mod:`~repro.verifyplan.updatebounds` proves the dynamic-graph patch
sweeps of :mod:`repro.dynamic` move ``O(n²)`` bytes (closed form ==
static IR tally == dynamic trace), that the statically-derived
touched-block set covers every block the patch actually changes, and
that the pivot panels are folded before any block kernel reads them.

Entry points: :func:`verify_plan` / ``python -m repro verify-plan`` /
``python -m repro check-schedule`` / ``python -m repro verify-cluster``
/ ``python -m repro verify-update``.
"""

from repro.verifyplan.analyze import (
    PlanFinding,
    TransferTally,
    analyze_def_use,
    analyze_residency,
    analyze_transfers,
    audit_ir,
)
from repro.verifyplan.bounds import (
    DEFAULT_TOLERANCE,
    BoundCheck,
    fw_exact_h2d_bytes,
)
from repro.verifyplan.commbounds import (
    CommReport,
    CommTally,
    analyze_comm,
    cluster_comm_checks,
    expected_comm_volumes,
    expected_link_bytes,
)
from repro.verifyplan.hb import (
    HBFinding,
    HBReport,
    analyze_cluster_hb,
    analyze_hb,
    merge_hb_reports,
)
from repro.verifyplan.ir import (
    AllocOp,
    BarrierOp,
    CollectiveOp,
    CopyOp,
    FreeOp,
    IREmitter,
    KernelOp,
    LinkSpec,
    NodeSpec,
    PlanIR,
    RecordOp,
    Rect,
    RecvOp,
    SendOp,
    SymBuffer,
    SymEvent,
    WaitOp,
)
from repro.verifyplan.timing import (
    CriticalSegment,
    TimingCalibration,
    TimingReport,
    kernel_duration,
    predict_cluster_timing,
    predict_multi_timing,
    predict_timing,
)
from repro.verifyplan.updatebounds import (
    SoundnessFinding,
    check_patch_soundness,
    decrease_d2h_bytes,
    decrease_h2d_bytes,
    increase_d2h_bytes,
    ir_transfer_maps,
    static_touched_blocks,
    update_bound_checks,
)
from repro.verifyplan.verifier import (
    ALGORITHM_NAMES,
    PlanAudit,
    PlanVerification,
    verify_plan,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AllocOp",
    "BarrierOp",
    "BoundCheck",
    "CollectiveOp",
    "CommReport",
    "CommTally",
    "CopyOp",
    "CriticalSegment",
    "DEFAULT_TOLERANCE",
    "FreeOp",
    "HBFinding",
    "HBReport",
    "IREmitter",
    "KernelOp",
    "LinkSpec",
    "NodeSpec",
    "PlanAudit",
    "PlanFinding",
    "PlanIR",
    "PlanVerification",
    "RecordOp",
    "Rect",
    "RecvOp",
    "SendOp",
    "SoundnessFinding",
    "SymBuffer",
    "SymEvent",
    "TimingCalibration",
    "TimingReport",
    "TransferTally",
    "WaitOp",
    "analyze_cluster_hb",
    "analyze_comm",
    "analyze_def_use",
    "analyze_hb",
    "analyze_residency",
    "analyze_transfers",
    "audit_ir",
    "check_patch_soundness",
    "cluster_comm_checks",
    "decrease_d2h_bytes",
    "decrease_h2d_bytes",
    "expected_comm_volumes",
    "expected_link_bytes",
    "fw_exact_h2d_bytes",
    "increase_d2h_bytes",
    "ir_transfer_maps",
    "kernel_duration",
    "merge_hb_reports",
    "predict_cluster_timing",
    "predict_multi_timing",
    "predict_timing",
    "static_touched_blocks",
    "update_bound_checks",
    "verify_plan",
]
