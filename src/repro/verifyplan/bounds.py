"""Closed-form transfer bounds from the paper, checked against the IR.

The paper derives the data-movement cost of each algorithm analytically
(Table I and Section III); the verifier recomputes each bound from the
plan parameters and compares it with the byte totals the symbolic
schedule actually moves:

* **blocked FW** — every block crosses the bus each outer iteration, so
  downloads are *exactly* ``n_d · n²`` elements (the per-``k`` download
  set tiles the full matrix: ``(b_k + Σ_{i≠k} b_i)(b_k + Σ_{j≠k} b_j) =
  n²`` even with a ragged last block), and the total volume is
  ``≈ (3·n_d − 1) · n²`` elements. The total is approximate: ragged
  blocks and the row-panel reuse in stage 3 shave a few per cent, hence
  the tolerance;
* **Johnson** — the CSR graph uploads once (``4(n+1) + 8m`` bytes) and
  every output row downloads exactly once (``n²`` elements) in
  ``⌈n / bat⌉`` batches;
* **boundary** — downloads are ``n² + Σ nᵢ²`` elements (dist2 blocks plus
  the full dist4 output), uploads ``Σ nᵢ² + n_b² + Σᵢ nᵢbᵢ + k·Σⱼ bⱼnⱼ``
  elements, and with ``N_row`` batching the step-4 output drains in at
  most ``⌈k / N_row⌉`` flushes instead of ``k²`` per-block copies.

Each check is a :class:`BoundCheck`; ``mode`` selects exact equality, an
upper bound, or a relative tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DEFAULT_TOLERANCE",
    "BoundCheck",
    "boundary_bound_checks",
    "fw_bound_checks",
    "fw_exact_h2d_bytes",
    "johnson_bound_checks",
    "multi_bound_checks",
]

#: default relative tolerance for the approximate FW volume checks —
#: generous enough for a pathologically ragged last block (b_{n_d-1} ≪ b)
DEFAULT_TOLERANCE = 0.25

_ELEM = 4  # DIST_DTYPE is float32


@dataclass(frozen=True)
class BoundCheck:
    """One closed-form bound compared against the symbolic schedule."""

    name: str
    expected: float
    actual: float
    #: "exact" (==), "at-most" (<=), or "approx" (within ``tolerance``)
    mode: str = "exact"
    tolerance: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        if self.mode == "exact":
            return self.actual == self.expected
        if self.mode == "at-most":
            return self.actual <= self.expected
        if self.expected == 0:
            return self.actual == 0
        return abs(self.actual - self.expected) <= self.tolerance * self.expected

    def describe(self) -> str:
        rel = {"exact": "==", "at-most": "<=", "approx": "≈"}[self.mode]
        status = "ok" if self.ok else "FAILED"
        tol = f" ±{self.tolerance:.0%}" if self.mode == "approx" else ""
        return (
            f"{self.name}: actual {self.actual:g} {rel} expected "
            f"{self.expected:g}{tol} [{status}]"
            + (f" — {self.detail}" if self.detail else "")
        )


def fw_exact_h2d_bytes(block_sizes, *, overlap: bool = True) -> int:
    """Exact upload volume of the blocked-FW schedule, ragged blocks and all.

    Derived term by term from the driver's three stages (``n = Σ bᵢ``,
    ``rest_k = n − b_k``, ``L = n_d − 1``):

    * stage 1 uploads the diagonal block: ``b_k²``;
    * stage 2 streams the row and column panels: ``2·b_k·rest_k``;
    * stage 3 uploads the column panel once per block-row (``b_k·rest_k``)
      and every work block (``rest_k²``);
    * stage-3 **row uploads** depend on the double-buffer rotation: buffer
      ``p = t mod nbuf`` revisits column ``j = t mod L``, so the re-upload
      of ``A(k,j)`` is elided iff the buffer still holds ``j`` — which
      happens from step ``nbuf`` on exactly when ``nbuf ≡ 0 (mod L)``.
      Then only the first-occupancy steps upload
      (``Σ_{t < min(nbuf, L²)} b_k·b_{js[t mod L]}``); otherwise every one
      of the ``L²`` steps re-uploads (``L·b_k·rest_k``).

    The earlier closed form assumed square remainder tiles and was only
    approximate for ``n % b ≠ 0``; this one is exact for any block-size
    list and matches the emitter/driver byte for byte.
    """
    sizes = [int(b) for b in block_sizes]
    n = sum(sizes)
    nd = len(sizes)
    nbuf = 2 if overlap else 1
    total = 0
    for k, bk in enumerate(sizes):
        rest = n - bk
        total += bk * bk  # stage 1: diagonal block
        total += 2 * bk * rest  # stage 2: row + column panels
        total += bk * rest  # stage 3: column-panel uploads (one per i)
        total += rest * rest  # stage 3: work-block uploads
        L = nd - 1
        if L > 0:
            js = [sizes[j] for j in range(nd) if j != k]
            if nbuf % L == 0:
                total += sum(bk * js[t % L] for t in range(min(nbuf, L * L)))
            else:
                total += L * bk * rest
    return total * _ELEM


def fw_bound_checks(
    n: int,
    num_blocks: int,
    bytes_h2d: int,
    bytes_d2h: int,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    block_sizes=None,
    overlap: bool = True,
) -> list[BoundCheck]:
    """Blocked FW: Table I's ``O(n_d · n²)`` movement, split by direction.

    With ``block_sizes`` (the layout's per-block edge lengths) the upload
    and total checks use :func:`fw_exact_h2d_bytes` and become **exact**
    even for ragged tilings; without it they fall back to the paper's
    square-tile ``(2·n_d − 1)·n²`` approximation with ``tolerance``.
    """
    nd = num_blocks
    d2h_expected = nd * n * n * _ELEM
    checks = [
        BoundCheck(
            name="fw-d2h-volume",
            expected=d2h_expected,
            actual=bytes_d2h,
            mode="exact",
            detail="each outer iteration downloads every block exactly once",
        )
    ]
    if block_sizes is not None:
        h2d_expected = fw_exact_h2d_bytes(block_sizes, overlap=overlap)
        checks += [
            BoundCheck(
                name="fw-h2d-volume",
                expected=h2d_expected,
                actual=bytes_h2d,
                mode="exact",
                detail=(
                    "exact ragged-tile upload volume (stage terms + the "
                    "double-buffer row-reuse rule)"
                ),
            ),
            BoundCheck(
                name="fw-total-volume",
                expected=h2d_expected + d2h_expected,
                actual=bytes_h2d + bytes_d2h,
                mode="exact",
                detail="paper Table I: O(n_d · n²) total movement, exact form",
            ),
            # the paper's square-tile approximation stays on as a
            # cross-check of the exact formula (and keeps ``tolerance``
            # meaningful in exact mode): the ragged correction must be
            # small relative to the O(n_d · n²) movement
            BoundCheck(
                name="fw-h2d-paper-form",
                expected=max(1, 2 * nd - 1) * n * n * _ELEM,
                actual=bytes_h2d,
                mode="approx",
                tolerance=tolerance,
                detail="uploads ≈ (2·n_d − 1)·n² elements (square-tile form)",
            ),
        ]
        return checks
    checks += [
        BoundCheck(
            name="fw-h2d-volume",
            expected=max(1, 2 * nd - 1) * n * n * _ELEM,
            actual=bytes_h2d,
            mode="approx",
            tolerance=tolerance,
            detail="uploads ≈ (2·n_d − 1)·n² elements (stage-3 row reuse shaves a little)",
        ),
        BoundCheck(
            name="fw-total-volume",
            expected=max(2, 3 * nd - 1) * n * n * _ELEM,
            actual=bytes_h2d + bytes_d2h,
            mode="approx",
            tolerance=tolerance,
            detail="paper Table I: O(n_d · n²) total movement",
        ),
    ]
    return checks


def johnson_bound_checks(
    n: int,
    m: int,
    bat: int,
    bytes_h2d: int,
    bytes_d2h: int,
    num_d2h: int,
) -> list[BoundCheck]:
    """Johnson: one CSR upload, one exact output-matrix download."""
    csr_bytes = 4 * (n + 1) + (8 * m if m else 0)
    return [
        BoundCheck(
            name="johnson-h2d-volume",
            expected=csr_bytes,
            actual=bytes_h2d,
            mode="exact",
            detail="the CSR graph uploads exactly once",
        ),
        BoundCheck(
            name="johnson-d2h-volume",
            expected=n * n * _ELEM,
            actual=bytes_d2h,
            mode="exact",
            detail="every output row downloads exactly once",
        ),
        BoundCheck(
            name="johnson-num-batches",
            expected=-(-n // bat),
            actual=num_d2h,
            mode="exact",
            detail="bat = (L − S)/(c·m) sources per MSSP launch, one download each",
        ),
    ]


def _component_terms(comp_start, comp_boundary) -> tuple[int, int, int]:
    """(Σ nᵢ², Σᵢ nᵢ·bᵢ, Σⱼ bⱼ·nⱼ) from the plan's partition arrays."""
    sizes = np.diff(np.asarray(comp_start))
    bnd = np.asarray(comp_boundary)
    sq = int((sizes * sizes).sum())
    nb_mix = int((sizes * bnd).sum())
    return sq, nb_mix, nb_mix


def boundary_bound_checks(
    plan,
    n: int,
    bytes_h2d: int,
    bytes_d2h: int,
    num_output_flushes: int,
    *,
    batched: bool,
) -> list[BoundCheck]:
    """Boundary algorithm: exact volumes plus the N_row batching bound."""
    k = plan.num_components
    nb = plan.num_boundary
    sq, c2b_elems, b2c_row = _component_terms(plan.comp_start, plan.comp_boundary)
    checks = [
        BoundCheck(
            name="boundary-d2h-volume",
            expected=(n * n + sq) * _ELEM,
            actual=bytes_d2h,
            mode="exact",
            detail="dist2 blocks (Σ nᵢ²) plus the full dist4 output (n²)",
        ),
        BoundCheck(
            name="boundary-h2d-volume",
            expected=(sq + nb * nb + c2b_elems + k * b2c_row) * _ELEM,
            actual=bytes_h2d,
            mode="exact",
            detail="components + boundary matrix + C2B/B2C extracts",
        ),
    ]
    if batched and plan.n_row >= 1:
        checks.append(
            BoundCheck(
                name="boundary-output-flushes",
                expected=-(-k // plan.n_row),
                actual=num_output_flushes,
                mode="at-most",
                detail=f"N_row={plan.n_row} block-rows per batched D2H flush",
            )
        )
    else:
        checks.append(
            BoundCheck(
                name="boundary-output-copies",
                expected=k * k,
                actual=num_output_flushes,
                mode="exact",
                detail="unbatched path: one strided copy per block",
            )
        )
    return checks


def multi_bound_checks(
    plan,
    n: int,
    num_devices: int,
    bytes_h2d: int,
    bytes_d2h: int,
) -> list[BoundCheck]:
    """Multi-GPU boundary: single-device volumes plus the broadcast cost."""
    k = plan.num_components
    nb = plan.num_boundary
    sq, c2b_elems, b2c_row = _component_terms(plan.comp_start, plan.comp_boundary)
    return [
        BoundCheck(
            name="multi-d2h-volume",
            expected=(n * n + sq + nb * nb) * _ELEM,
            actual=bytes_d2h,
            mode="exact",
            detail="dist2 + dist4 output + the closed boundary matrix staging back",
        ),
        BoundCheck(
            name="multi-h2d-volume",
            expected=(sq + num_devices * nb * nb + c2b_elems + k * b2c_row) * _ELEM,
            actual=bytes_h2d,
            mode="exact",
            detail="broadcast uploads the closed boundary matrix to every device",
        ),
    ]
