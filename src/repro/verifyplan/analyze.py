"""Static analyses over a :class:`~repro.verifyplan.ir.PlanIR`.

Three independent walks over the linear op sequence:

* :func:`analyze_residency` — interval/liveness analysis of the charged
  allocation bytes, proving peak device residency stays within capacity
  (the static analogue of :class:`~repro.gpu.memory.DeviceMemory`'s
  runtime ``OutOfMemoryError``);
* :func:`analyze_def_use` — every kernel operand and every download must
  be *defined before use*: some earlier upload, fill, or kernel write
  overlaps the read rectangle (the compile-time analogue of the
  sanitizer's ``uninitialized-read`` rule);
* :func:`analyze_transfers` — tallies bus traffic and flags redundant
  transfers: an upload of a host block that is already resident and
  unmodified on the device, or a download whose source region has not
  changed since the same block was last downloaded. Both are pure wasted
  bytes on the PCIe bus the paper's movement bounds assume are absent.

All three return :class:`PlanFinding` records; :func:`audit_ir` bundles
them with the traffic tally for the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verifyplan.ir import (
    AllocOp,
    CopyOp,
    FreeOp,
    KernelOp,
    PlanIR,
    Rect,
    RecvOp,
    SendOp,
)

__all__ = [
    "PlanFinding",
    "TransferTally",
    "analyze_def_use",
    "analyze_residency",
    "analyze_transfers",
    "audit_ir",
]


@dataclass(frozen=True)
class PlanFinding:
    """One defect proven from the symbolic schedule.

    ``kind`` is one of ``capacity-exceeded``, ``undefined-read``,
    ``redundant-upload``, ``redundant-download``. ``block`` carries the
    host block key (coordinates) for transfer findings.
    """

    kind: str
    buffer: str
    detail: str
    op_index: int
    block: tuple | None = None
    wasted_bytes: int = 0

    def describe(self) -> str:
        loc = f"op #{self.op_index}"
        blk = f" block {self.block}" if self.block is not None else ""
        waste = f" ({self.wasted_bytes} wasted B)" if self.wasted_bytes else ""
        return f"{self.kind}: buffer {self.buffer!r}{blk} at {loc}{waste} — {self.detail}"


@dataclass
class TransferTally:
    """Aggregate bus traffic of one plan."""

    bytes_h2d: int = 0
    bytes_d2h: int = 0
    num_h2d: int = 0
    num_d2h: int = 0
    redundant_bytes: int = 0
    #: d2h op count per leading key element, e.g. {"host-rows": 3}
    d2h_by_key: dict = field(default_factory=dict)


def analyze_residency(ir: PlanIR) -> tuple[int, list[PlanFinding]]:
    """Walk allocs/frees; return (peak charged bytes, capacity findings)."""
    findings: list[PlanFinding] = []
    used = 0
    peak = 0
    live: dict[int, int] = {}  # buffer id -> charged bytes
    for idx, op in enumerate(ir.ops):
        if isinstance(op, AllocOp):
            buf = ir.buffers[op.buffer]
            used += buf.charged_bytes
            live[op.buffer] = buf.charged_bytes
            if used > peak:
                peak = used
            if used > ir.capacity:
                top = sorted(
                    (ir.buffers[b].name, c) for b, c in live.items()
                )
                top.sort(key=lambda t: -t[1])
                held = ", ".join(f"{n}={c}B" for n, c in top[:6])
                findings.append(
                    PlanFinding(
                        kind="capacity-exceeded",
                        buffer=buf.name,
                        detail=(
                            f"residency {used}B exceeds capacity {ir.capacity}B; "
                            f"live set: {held}"
                        ),
                        op_index=idx,
                        wasted_bytes=used - ir.capacity,
                    )
                )
        elif isinstance(op, FreeOp):
            used -= live.pop(op.buffer, 0)
    return peak, findings


def analyze_def_use(ir: PlanIR) -> list[PlanFinding]:
    """Prove every read rectangle overlaps an earlier write to its buffer."""
    findings: list[PlanFinding] = []
    written: dict[int, list[Rect]] = {}
    prefilled: set[int] = set()

    def record_write(buffer: int, rect: Rect) -> None:
        written.setdefault(buffer, []).append(rect)

    def check_read(buffer: int, rect: Rect, what: str, idx: int) -> None:
        if rect.empty or buffer in prefilled:
            return
        if any(w.overlaps(rect) for w in written.get(buffer, ())):
            return
        buf = ir.buffers[buffer]
        findings.append(
            PlanFinding(
                kind="undefined-read",
                buffer=buf.name,
                detail=f"{what} reads {rect} before any upload, fill, or kernel write",
                op_index=idx,
            )
        )

    for idx, op in enumerate(ir.ops):
        if isinstance(op, AllocOp):
            written[op.buffer] = []
            if ir.buffers[op.buffer].prefilled:
                prefilled.add(op.buffer)
        elif isinstance(op, CopyOp):
            if op.kind == "h2d":
                record_write(op.access.buffer, op.access.rect)
            else:
                check_read(op.access.buffer, op.access.rect, "d2h copy", idx)
        elif isinstance(op, KernelOp):
            for acc in op.reads:
                check_read(acc.buffer, acc.rect, f"kernel {op.name!r}", idx)
            for acc in op.writes:
                record_write(acc.buffer, acc.rect)
        elif isinstance(op, SendOp):
            # a send ships device bytes to another rank: reading an
            # undefined source region ships garbage (dropped-broadcast
            # defects surface here on the *receiving* rank's later reads
            # and here on a sender that forwards a block it never built)
            check_read(op.access.buffer, op.access.rect,
                       f"send(tag={op.tag!r} -> rank {op.dst})", idx)
        elif isinstance(op, RecvOp):
            record_write(op.access.buffer, op.access.rect)
    return findings


@dataclass
class _Resident:
    """A host block's clean copy on the device (buffer region + key)."""

    buffer: int
    rect: Rect


def analyze_transfers(ir: PlanIR) -> tuple[TransferTally, list[PlanFinding]]:
    """Tally traffic and flag redundant transfers.

    A host-block *residency map* tracks which device region last matched
    each host block. Kernel writes, frees, and overwriting uploads
    invalidate overlapping entries; an upload whose key is still resident
    and clean is redundant, as is a download whose key was already
    downloaded from an untouched region.
    """
    tally = TransferTally()
    findings: list[PlanFinding] = []
    resident: dict[tuple, _Resident] = {}
    downloaded: dict[tuple, _Resident] = {}

    def invalidate(buffer: int, rect: Rect | None) -> None:
        for table in (resident, downloaded):
            stale = [
                key
                for key, ent in table.items()
                if ent.buffer == buffer
                and (rect is None or ent.rect.overlaps(rect))
            ]
            for key in stale:
                del table[key]

    for idx, op in enumerate(ir.ops):
        if isinstance(op, FreeOp):
            invalidate(op.buffer, None)
        elif isinstance(op, KernelOp):
            for acc in op.writes:
                invalidate(acc.buffer, acc.rect)
        elif isinstance(op, RecvOp):
            # network writes mutate device bytes exactly like kernel
            # writes; they move no PCIe bytes (commbounds tallies them)
            invalidate(op.access.buffer, op.access.rect)
        elif isinstance(op, CopyOp):
            acc = op.access
            name = ir.buffers[acc.buffer].name
            if op.kind == "h2d":
                tally.bytes_h2d += acc.nbytes
                tally.num_h2d += 1
                ent = resident.get(op.key)
                if ent is not None and acc.nbytes > 0:
                    where = ir.buffers[ent.buffer].name
                    tally.redundant_bytes += acc.nbytes
                    findings.append(
                        PlanFinding(
                            kind="redundant-upload",
                            buffer=name,
                            detail=(
                                f"host block {op.key} is already resident and "
                                f"unmodified in {where!r} {ent.rect}"
                            ),
                            op_index=idx,
                            block=op.key,
                            wasted_bytes=acc.nbytes,
                        )
                    )
                invalidate(acc.buffer, acc.rect)  # overwrites other keys' bytes
                if not acc.rect.empty:
                    resident[op.key] = _Resident(acc.buffer, acc.rect)
            else:
                tally.bytes_d2h += acc.nbytes
                tally.num_d2h += 1
                head = str(op.key[0]) if op.key else ""
                tally.d2h_by_key[head] = tally.d2h_by_key.get(head, 0) + 1
                ent = downloaded.get(op.key)
                if ent is not None and acc.nbytes > 0:
                    tally.redundant_bytes += acc.nbytes
                    findings.append(
                        PlanFinding(
                            kind="redundant-download",
                            buffer=name,
                            detail=(
                                f"host block {op.key} was already downloaded and "
                                f"the source region has not changed since"
                            ),
                            op_index=idx,
                            block=op.key,
                            wasted_bytes=acc.nbytes,
                        )
                    )
                if not acc.rect.empty:
                    downloaded[op.key] = _Resident(acc.buffer, acc.rect)
                    # the host copy now equals this device region, so a
                    # re-upload of the same key would move nothing new
                    resident[op.key] = _Resident(acc.buffer, acc.rect)
    return tally, findings


def audit_ir(ir: PlanIR) -> tuple[int, TransferTally, list[PlanFinding]]:
    """Run all three analyses; returns (peak_bytes, tally, findings)."""
    peak, cap_findings = analyze_residency(ir)
    du_findings = analyze_def_use(ir)
    tally, tr_findings = analyze_transfers(ir)
    return peak, tally, [*cap_findings, *du_findings, *tr_findings]
