"""Closed-form communication-volume bounds for distributed block-APSP.

The 2-D block-cyclic blocked-FW schedule (:mod:`repro.cluster`) moves a
provable number of bytes over each link. With per-``k`` pivot block
edges ``b_k`` (``n = Σ b_k``, ``n_d`` blocks, ``P = Pr·Pc`` nodes, ``M``
devices per node), the lowered collectives cost exactly:

* **pivot broadcast** — ``(Pr + Pc − 2) · Σ_k b_k²`` elements;
* **row panels** — ``(Pr − 1) · Σ_k b_k (n − b_k)`` elements, and the
  column panels the same with ``Pc``. Since
  ``Σ_k b_k (n − b_k) = n² − Σ_k b_k²``, the panel traffic is the
  ``O(n² · √P · n_d)``-shaped term of the classical 2-D distribution:
  with ``Pr ≈ Pc ≈ √P`` and even tiling it is
  ``2(√P − 1) · n² · (1 − 1/n_d)`` elements total, i.e. ``O(n²√P)``
  per *fleet* and ``O(n²/√P · n_d)``-free per node — halve the grid
  dimension and the per-node panel traffic halves;
* **scatter** — ``Σ_k 2 (b_k − w₀(k)) (n − b_k)(n_d − 1)`` elements,
  where ``w₀(k)`` is the lead's share of the evenly split inner
  dimension (:func:`repro.cluster.topology.slice_widths`);
* **reduce** — ``Σ_k a_k (n − b_k)²`` elements with ``a_k`` the number
  of active siblings (``min(M, b_k) − 1``);
* **all-gather** — ``(P − 1) · n²`` elements.

:func:`analyze_comm` tallies the *static* schedule's
:class:`~repro.verifyplan.ir.SendOp`/:class:`~repro.verifyplan.ir.RecvOp`
traffic; :func:`cluster_comm_checks` compares it — per collective kind,
per directed link (derived combinatorially from the ownership layout,
independent of both the IR and any trace), and in total — as **exact**
:class:`~repro.verifyplan.bounds.BoundCheck` equalities. The dynamic
simulator's message trace is held to the same byte counts by the tests,
closing the triangle: closed form == static schedule == executed trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.verifyplan.bounds import BoundCheck
from repro.verifyplan.ir import PlanIR, RecvOp, SendOp

if TYPE_CHECKING:  # pragma: no cover - annotations only, avoids a cycle
    from repro.cluster.topology import BlockCyclicLayout, ClusterSpec

__all__ = [
    "CommReport",
    "CommTally",
    "analyze_comm",
    "cluster_comm_checks",
    "expected_comm_volumes",
    "expected_link_bytes",
]

_ELEM = 4  # DIST_DTYPE is float32


@dataclass
class CommTally:
    """Aggregate message traffic of one distributed schedule's IRs."""

    #: directed (src_rank, dst_rank) -> bytes sent
    link_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    #: directed (src_rank, dst_rank) -> messages sent
    link_msgs: dict[tuple[int, int], int] = field(default_factory=dict)
    #: lowered-collective label -> bytes sent
    kind_bytes: dict[str, int] = field(default_factory=dict)
    #: directed (src_rank, dst_rank) -> bytes received
    recv_link_bytes: dict[tuple[int, int], int] = field(default_factory=dict)
    num_messages: int = 0

    @property
    def total_bytes(self) -> int:
        return sum(self.link_bytes.values())


def analyze_comm(irs: list[PlanIR]) -> CommTally:
    """Tally every send/recv in the per-rank IRs (static byte counts)."""
    tally = CommTally()
    for ir in irs:
        for op in ir.ops:
            if isinstance(op, SendOp):
                link = (ir.rank, op.dst)
                tally.link_bytes[link] = (
                    tally.link_bytes.get(link, 0) + op.access.nbytes
                )
                tally.link_msgs[link] = tally.link_msgs.get(link, 0) + 1
                tally.kind_bytes[op.collective] = (
                    tally.kind_bytes.get(op.collective, 0) + op.access.nbytes
                )
                tally.num_messages += 1
            elif isinstance(op, RecvOp):
                link = (op.src, ir.rank)
                tally.recv_link_bytes[link] = (
                    tally.recv_link_bytes.get(link, 0) + op.access.nbytes
                )
    return tally


def expected_comm_volumes(
    cluster: "ClusterSpec", layout: "BlockCyclicLayout"
) -> dict[str, int]:
    """Closed-form bytes per lowered collective (module docstring forms)."""
    from repro.cluster.topology import slice_widths

    pr, pc = cluster.grid
    num_dev = cluster.devices_per_node
    nd = layout.num_blocks
    n = layout.n
    sizes = [layout.size(k) for k in range(nd)]

    sum_bk2 = sum(bk * bk for bk in sizes)
    sum_panel = sum(bk * (n - bk) for bk in sizes)
    scatter = 0
    reduce_ = 0
    for bk in sizes:
        widths = slice_widths(bk, num_dev)
        active = sum(1 for w in widths[1:] if w > 0)
        scatter += 2 * (bk - widths[0]) * (n - bk) * (nd - 1)
        reduce_ += active * (n - bk) * (n - bk)
    return {
        "broadcast-diag": _ELEM * (pr + pc - 2) * sum_bk2,
        "broadcast-row": _ELEM * (pr - 1) * sum_panel,
        "broadcast-col": _ELEM * (pc - 1) * sum_panel,
        "scatter": _ELEM * scatter,
        "reduce": _ELEM * reduce_,
        "allgather": _ELEM * (cluster.num_nodes - 1) * n * n,
    }


def expected_link_bytes(
    cluster: "ClusterSpec", layout: "BlockCyclicLayout"
) -> dict[tuple[int, int], int]:
    """Per-directed-link bytes, derived combinatorially from the layout.

    Enumerates the ownership/broadcast conventions (full grid-row/column
    broadcast receiver sets, even inner-dimension split) without reading
    the IR or any trace, so an IR whose wiring drifts — a dropped panel,
    a duplicated contribution, a wrong destination rank — disagrees here
    with node and link attribution.
    """
    from repro.cluster.topology import slice_widths

    pr, pc = cluster.grid
    num_dev = cluster.devices_per_node
    nd = layout.num_blocks
    sz = layout.size
    lead = cluster.lead_rank
    link: dict[tuple[int, int], int] = {}

    def add(src: int, dst: int, elems: int) -> None:
        link[(src, dst)] = link.get((src, dst), 0) + elems * _ELEM

    for k in range(nd):
        bk = sz(k)
        owner_kk = layout.owner_node(k, k)
        okr, okc = cluster.grid_coords(owner_kk)
        for g in range(pc):
            node = cluster.node_at(okr, g)
            if node != owner_kk:
                add(lead(owner_kk), lead(node), bk * bk)
        for g in range(pr):
            node = cluster.node_at(g, okc)
            if node != owner_kk:
                add(lead(owner_kk), lead(node), bk * bk)
        for j in range(nd):
            if j == k:
                continue
            owner = layout.owner_node(k, j)
            ogr, ogc = cluster.grid_coords(owner)
            for g in range(pr):
                if g != ogr:
                    add(lead(owner), lead(cluster.node_at(g, ogc)), bk * sz(j))
        for i in range(nd):
            if i == k:
                continue
            owner = layout.owner_node(i, k)
            ogr, ogc = cluster.grid_coords(owner)
            for g in range(pc):
                if g != ogc:
                    add(lead(owner), lead(cluster.node_at(ogr, g)), sz(i) * bk)
        widths = slice_widths(bk, num_dev)
        for i in range(nd):
            if i == k:
                continue
            for j in range(nd):
                if j == k:
                    continue
                root = lead(layout.owner_node(i, j))
                bi, bj = sz(i), sz(j)
                for d in range(1, num_dev):
                    if widths[d] > 0:
                        add(root, root + d, bi * widths[d] + widths[d] * bj)
                        add(root + d, root, bi * bj)
    leads = [lead(node) for node in range(cluster.num_nodes)]
    for node in range(cluster.num_nodes):
        root = lead(node)
        for i, j in layout.owned_blocks(node):
            for other in leads:
                if other != root:
                    add(root, other, sz(i) * sz(j))
    return link


@dataclass
class CommReport:
    """Communication-volume proof for one distributed schedule."""

    algorithm: str
    cluster: str
    n: int
    block_size: int
    num_messages: int
    total_bytes: int
    checks: list[BoundCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def describe(self) -> str:
        lines = [
            f"{self.algorithm} on {self.cluster}: {self.num_messages} "
            f"messages, {self.total_bytes} bytes "
            f"({'all volume bounds hold' if self.ok else 'VOLUME DRIFT'})"
        ]
        for check in self.checks:
            if not check.ok:
                lines.append("  " + check.describe())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "cluster": self.cluster,
            "n": self.n,
            "block_size": self.block_size,
            "num_messages": self.num_messages,
            "total_bytes": self.total_bytes,
            "ok": self.ok,
            "num_checks": len(self.checks),
            "failed_checks": [c.describe() for c in self.checks if not c.ok],
        }


def cluster_comm_checks(
    cluster: "ClusterSpec",
    layout: "BlockCyclicLayout",
    tally: CommTally,
    *,
    algorithm: str = "cluster-fw",
) -> CommReport:
    """Exact-equality checks: per collective, per link, and in total."""
    expected_kinds = expected_comm_volumes(cluster, layout)
    expected_links = expected_link_bytes(cluster, layout)
    name = cluster.rank_name
    checks: list[BoundCheck] = []
    for kind in sorted(set(expected_kinds) | set(tally.kind_bytes)):
        checks.append(BoundCheck(
            name=f"comm-{kind}",
            expected=expected_kinds.get(kind, 0),
            actual=tally.kind_bytes.get(kind, 0),
            mode="exact",
            detail=f"closed-form {kind} volume over the 2-D block-cyclic layout",
        ))
    checks.append(BoundCheck(
        name="comm-total",
        expected=sum(expected_kinds.values()),
        actual=tally.total_bytes,
        mode="exact",
        detail="total lowered-collective traffic, all links",
    ))
    for src, dst in sorted(set(expected_links) | set(tally.link_bytes)):
        checks.append(BoundCheck(
            name=f"comm-link-{name(src)}->{name(dst)}",
            expected=expected_links.get((src, dst), 0),
            actual=tally.link_bytes.get((src, dst), 0),
            mode="exact",
            detail=(
                f"{cluster.link_of(src, dst).name} link "
                f"{name(src)}->{name(dst)}"
            ),
        ))
    for src, dst in sorted(set(tally.link_bytes) | set(tally.recv_link_bytes)):
        checks.append(BoundCheck(
            name=f"comm-matched-{name(src)}->{name(dst)}",
            expected=tally.link_bytes.get((src, dst), 0),
            actual=tally.recv_link_bytes.get((src, dst), 0),
            mode="exact",
            detail="every sent byte has a matching receive on this link",
        ))
    return CommReport(
        algorithm=algorithm,
        cluster=cluster.name,
        n=layout.n,
        block_size=layout.block_size,
        num_messages=tally.num_messages,
        total_bytes=tally.total_bytes,
        checks=checks,
    )
