"""Symbolic schedule IR for the static plan verifier.

A :class:`PlanIR` is the *compiled form* of one out-of-core driver's
execution plan: the linear sequence of device allocations, frees, H2D/D2H
copies, and kernel launches the driver would enqueue — with every operand
reduced to a rectangle of a symbolic buffer. Nothing is executed and no
distance matrix exists; the IR carries only shapes, byte counts, and host
block identities, which is all the analyses in
:mod:`repro.verifyplan.analyze` need.

Each driver module owns an ``emit_*_ir`` function that mirrors its real
schedule (``repro.core.ooc_fw.emit_fw_ir`` and friends); the tests
cross-validate the mirrors against the dynamic trace, byte for byte.

Conventions:

* buffers are at most 2-D; 1-D buffers of length ``l`` occupy the
  rectangle ``(0, l, 0, 1)``;
* rectangles are half-open ``[r0, r1) × [c0, c1)`` in *buffer* coordinates
  (so disjoint views of one buffer never alias, mirroring the sanitizer's
  ``np.shares_memory`` test);
* ``key`` on a copy identifies the host-side block the transfer touches —
  e.g. ``("A", i, k)`` for a distance-matrix block — and is what the
  redundant-transfer analysis tracks residency by;
* every enqueued op names its ``stream``; cross-stream ordering is
  expressed with :class:`RecordOp`/:class:`WaitOp` event edges and
  :class:`BarrierOp` device-wide joins, mirroring the runtime's
  ``Stream.record``/``Stream.wait``/``_barrier`` exactly so the
  happens-before checker (:mod:`repro.verifyplan.hb`) and the symbolic
  timing pass (:mod:`repro.verifyplan.timing`) see the same schedule the
  dynamic sanitizer would;
* distributed schedules (:mod:`repro.cluster`) add one IR per rank
  (``PlanIR.rank``), message ops (:class:`SendOp`/:class:`RecvOp`) over
  modeled :class:`LinkSpec` interconnects between :class:`NodeSpec`
  nodes, and :class:`CollectiveOp` markers recording which lowered
  point-to-point pairs implement each collective. A send *reads* its
  source rectangle and a recv *writes* its destination rectangle, so the
  existing def-use and happens-before analyses see the communication
  exactly as they see copies; the cross-rank matching lives in
  :func:`repro.verifyplan.hb.analyze_cluster_hb` and the volume proofs
  in :mod:`repro.verifyplan.commbounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Access",
    "AllocOp",
    "BarrierOp",
    "CollectiveOp",
    "CopyOp",
    "FreeOp",
    "IREmitter",
    "KernelOp",
    "LinkSpec",
    "NodeSpec",
    "PlanIR",
    "RecordOp",
    "Rect",
    "RecvOp",
    "SendOp",
    "SymBuffer",
    "SymEvent",
    "WaitOp",
]


@dataclass(frozen=True)
class Rect:
    """Half-open rectangle ``[r0, r1) × [c0, c1)`` in buffer coordinates."""

    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def rows(self) -> int:
        return max(0, self.r1 - self.r0)

    @property
    def cols(self) -> int:
        return max(0, self.c1 - self.c0)

    @property
    def area(self) -> int:
        return self.rows * self.cols

    @property
    def empty(self) -> bool:
        return self.area == 0

    def overlaps(self, other: "Rect") -> bool:
        """Non-empty byte intersection (empty rects overlap nothing)."""
        if self.empty or other.empty:
            return False
        return (
            self.r0 < other.r1
            and other.r0 < self.r1
            and self.c0 < other.c1
            and other.c0 < self.c1
        )

    def __str__(self) -> str:
        return f"[{self.r0}:{self.r1}, {self.c0}:{self.c1}]"


@dataclass(frozen=True)
class SymBuffer:
    """One symbolic device allocation."""

    id: int
    name: str
    shape: tuple[int, ...]
    itemsize: int = 4
    #: bytes accounted against device capacity (differs from real bytes for
    #: sparse structures on scaled devices, see ``DeviceSpec.sparse_charge_factor``)
    charged_bytes: int = 0
    #: allocated with a fill value (counts as initialised, like the sanitizer)
    prefilled: bool = False

    @property
    def full_rect(self) -> Rect:
        if len(self.shape) == 1:
            return Rect(0, int(self.shape[0]), 0, 1)
        return Rect(0, int(self.shape[0]), 0, int(self.shape[1]))


@dataclass(frozen=True)
class Access:
    """A rectangle of one buffer, with its transfer/operand byte count."""

    buffer: int
    rect: Rect
    nbytes: int


@dataclass(frozen=True)
class AllocOp:
    buffer: int


@dataclass(frozen=True)
class FreeOp:
    buffer: int


@dataclass(frozen=True)
class CopyOp:
    """One bus transfer; ``kind`` is ``"h2d"`` or ``"d2h"``.

    ``sync`` mirrors ``copy_h2d`` vs ``copy_h2d_async``: a synchronous
    copy joins the host clock (``cudaMemcpy`` semantics); an async one
    only orders within its stream. ``strided`` marks the 2-D row-strided
    transfer (``copy_d2h_2d``), which pays a per-row overhead in the
    timing model instead of the contiguous bulk rate.
    """

    kind: str
    access: Access
    key: tuple
    stream: str = "default"
    sync: bool = True
    strided: bool = False


@dataclass(frozen=True)
class KernelOp:
    """One kernel launch with declared def/use sets.

    ``annotate`` mirrors ``stream.annotate``: a sanitizer-visible host
    side effect that occupies no timeline slot (the timing pass skips
    it; the happens-before pass treats it as a full op, exactly like the
    dynamic sanitizer). ``cost`` optionally pins the modelled duration in
    seconds for kernels whose cost is data-dependent (Johnson's
    ``mssp``); when ``None`` the timing pass derives the duration from
    the declared operand rectangles.
    """

    name: str
    reads: tuple[Access, ...]
    writes: tuple[Access, ...]
    stream: str = "default"
    annotate: bool = False
    cost: float | None = None


@dataclass(frozen=True)
class SymEvent:
    """One recorded event instance (a fresh ``Event`` in the runtime)."""

    id: int
    name: str


@dataclass(frozen=True)
class RecordOp:
    """``stream.record(Event(name))`` — snapshots the stream's position."""

    event: int
    name: str
    stream: str


@dataclass(frozen=True)
class WaitOp:
    """``stream.wait(event)`` — joins the event's snapshot into ``stream``."""

    event: int
    stream: str


@dataclass(frozen=True)
class BarrierOp:
    """A device-wide (or fleet-wide, for multi-GPU) synchronisation point."""

    label: str


@dataclass(frozen=True)
class NodeSpec:
    """One node of a modeled cluster: an id, a name, and its device count."""

    id: int
    name: str
    num_devices: int = 1


@dataclass(frozen=True)
class LinkSpec:
    """α-β cost model of one interconnect class (distinct from PCIe).

    A transfer of ``b`` bytes costs ``latency + b / bandwidth`` seconds;
    transfers over the same directed (src, dst) pair serialise, mirroring
    one DMA engine per link direction.
    """

    name: str
    latency: float  # α, seconds per message
    bandwidth: float  # β, bytes per second

    def duration(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class SendOp:
    """Rendezvous send of ``access`` to rank ``dst`` on channel ``tag``.

    Reads its source rectangle (the HB/def-use analyses treat it like a
    d2h copy's read). ``collective`` names the collective this message
    lowers from (``"bcast"``/``"allgather"``/``"reduce"``/``"scatter"``,
    or ``""`` for a raw point-to-point message); ``key`` is the logical
    host-block identity for attribution.
    """

    dst: int
    tag: str
    access: Access
    key: tuple
    stream: str = "default"
    collective: str = ""


@dataclass(frozen=True)
class RecvOp:
    """Rendezvous receive from rank ``src`` on channel ``tag``.

    Writes its destination rectangle. Matching is FIFO per
    ``(src, dst, tag)`` channel; the cross-node HB pass joins the matched
    send's vector clock into the receiving stream, so everything ordered
    before the send happens-before everything after the recv.
    """

    src: int
    tag: str
    access: Access
    key: tuple
    stream: str = "default"
    collective: str = ""


@dataclass(frozen=True)
class CollectiveOp:
    """Marker recording one collective's membership on a participant rank.

    Clockless (like ``annotate`` kernels): the data movement lives in the
    lowered :class:`SendOp`/:class:`RecvOp` pairs that follow it. The
    marker ties those messages back to the collective for the
    communication-volume proofs and for defect attribution.
    """

    kind: str  # "bcast" | "allgather" | "reduce" | "scatter"
    tag: str
    root: int
    ranks: tuple[int, ...]


@dataclass(frozen=True)
class PlanIR:
    """The compiled schedule of one driver on one device (or cluster rank)."""

    algorithm: str
    device: str
    capacity: int
    buffers: dict[int, SymBuffer] = field(default_factory=dict)
    ops: tuple = ()
    #: rank id within a cluster schedule (0 for single-device plans)
    rank: int = 0

    @property
    def num_ops(self) -> int:
        return len(self.ops)


class IREmitter:
    """Builder the drivers' ``emit_*_ir`` mirrors write their schedule into.

    The operand arguments accept either a :class:`SymBuffer` (meaning its
    full rectangle) or a ``(SymBuffer, Rect)`` pair.
    """

    def __init__(
        self, algorithm: str, device: str, capacity: int, *, rank: int = 0
    ) -> None:
        self.algorithm = algorithm
        self.device = device
        self.capacity = int(capacity)
        self.rank = int(rank)
        self._buffers: dict[int, SymBuffer] = {}
        self._ops: list = []
        self._next_id = 0
        self._next_event = 0

    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        *,
        itemsize: int = 4,
        charged_bytes: int | None = None,
        prefilled: bool = False,
    ) -> SymBuffer:
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        nelem = 1
        for s in shape:
            nelem *= s
        charge = nelem * itemsize if charged_bytes is None else int(charged_bytes)
        buf = SymBuffer(
            id=self._next_id, name=name, shape=shape, itemsize=itemsize,
            charged_bytes=charge, prefilled=prefilled,
        )
        self._next_id += 1
        self._buffers[buf.id] = buf
        self._ops.append(AllocOp(buf.id))
        return buf

    def free(self, buf: SymBuffer) -> None:
        self._ops.append(FreeOp(buf.id))

    def _access(self, operand, rect: Rect | None = None) -> Access:
        if isinstance(operand, tuple):
            buf, rect = operand
        else:
            buf = operand
        if rect is None:
            rect = buf.full_rect
        return Access(buf.id, rect, rect.area * buf.itemsize)

    def h2d(
        self,
        buf: SymBuffer,
        rect: Rect | None = None,
        *,
        key: tuple,
        stream: str = "default",
        sync: bool = True,
    ) -> None:
        self._ops.append(
            CopyOp("h2d", self._access(buf, rect), tuple(key), stream=stream, sync=sync)
        )

    def d2h(
        self,
        buf: SymBuffer,
        rect: Rect | None = None,
        *,
        key: tuple,
        stream: str = "default",
        sync: bool = True,
        strided: bool = False,
    ) -> None:
        self._ops.append(
            CopyOp(
                "d2h", self._access(buf, rect), tuple(key),
                stream=stream, sync=sync, strided=strided,
            )
        )

    def kernel(
        self,
        name: str,
        *,
        reads=(),
        writes=(),
        stream: str = "default",
        annotate: bool = False,
        cost: float | None = None,
    ) -> None:
        self._ops.append(
            KernelOp(
                name,
                tuple(self._access(r) for r in reads),
                tuple(self._access(w) for w in writes),
                stream=stream,
                annotate=annotate,
                cost=cost,
            )
        )

    def send(
        self,
        buf: SymBuffer,
        rect: Rect | None = None,
        *,
        dst: int,
        tag: str,
        key: tuple,
        stream: str = "default",
        collective: str = "",
    ) -> None:
        """Mirror a rendezvous send to rank ``dst`` on channel ``tag``."""
        self._ops.append(
            SendOp(
                dst=int(dst), tag=tag, access=self._access(buf, rect),
                key=tuple(key), stream=stream, collective=collective,
            )
        )

    def recv(
        self,
        buf: SymBuffer,
        rect: Rect | None = None,
        *,
        src: int,
        tag: str,
        key: tuple,
        stream: str = "default",
        collective: str = "",
    ) -> None:
        """Mirror a rendezvous receive from rank ``src`` on channel ``tag``."""
        self._ops.append(
            RecvOp(
                src=int(src), tag=tag, access=self._access(buf, rect),
                key=tuple(key), stream=stream, collective=collective,
            )
        )

    def collective(self, kind: str, *, tag: str, root: int, ranks) -> None:
        """Mark this rank's membership in one lowered collective."""
        self._ops.append(
            CollectiveOp(kind=kind, tag=tag, root=int(root),
                         ranks=tuple(int(r) for r in ranks))
        )

    def record(self, name: str, *, stream: str = "default") -> SymEvent:
        """Mirror ``stream.record(Event(name))``; returns the event handle."""
        event = SymEvent(id=self._next_event, name=name)
        self._next_event += 1
        self._ops.append(RecordOp(event=event.id, name=name, stream=stream))
        return event

    def wait(self, event: SymEvent, *, stream: str = "default") -> None:
        """Mirror ``stream.wait(event)``."""
        self._ops.append(WaitOp(event=event.id, stream=stream))

    def barrier(self, label: str) -> None:
        """Mirror a device-wide synchronisation (multi-GPU ``_barrier``)."""
        self._ops.append(BarrierOp(label))

    def finish(self) -> PlanIR:
        return PlanIR(
            algorithm=self.algorithm,
            device=self.device,
            capacity=self.capacity,
            buffers=dict(self._buffers),
            ops=tuple(self._ops),
            rank=self.rank,
        )
