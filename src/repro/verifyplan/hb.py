"""Happens-before model checker over the symbolic schedule IR.

The dynamic sanitizer (:mod:`repro.sanitize.sanitizer`) certifies the one
interleaving a run happened to take. This module proves the stronger
property *statically*: for a :class:`~repro.verifyplan.ir.PlanIR` whose
emitter mirrors the driver's stream/event structure, it computes the
**must-happen-before** relation — the partial order induced only by

* program order within each stream,
* ``record``/``wait`` event edges (the recorded stream's clock snapshot
  joined into the waiting stream), and
* host-clock joins from synchronous copies, frees, and barriers
  (``cudaMemcpy``/``cudaFree`` semantics, identical to the sanitizer),

and checks that **every** pair of byte-overlapping conflicting accesses
on different streams is ordered by it. Because the relation contains no
data- or timing-dependent edges, ordering under it holds in *every*
legal interleaving, not just the traced one: "no defect possible", not
"no defect seen".

Deadlock-freedom falls out structurally: the checker verifies that every
``wait`` names an event recorded **earlier in enqueue order** (a wait on
a never-recorded event is reported as ``unsatisfiable-wait``). Program
order edges also point forward in enqueue order, so the synchronisation
graph is a DAG by construction — acyclic, with every wait satisfiable.

A third pass flags **dead events**: a record no wait ever consumes
orders nothing and is either leftover scaffolding or a dropped-edge bug
in the making. Detection is per record instance; reporting groups the
orphans per ``(stream, event-name)`` site (lint rule RPR007 is the
source-level twin of this check).

The vector-clock machinery deliberately mirrors the sanitizer op for op
(host-clock inheritance at enqueue, snapshot-on-record, join-on-wait) so
the static and dynamic analyses agree on what "ordered" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verifyplan.ir import (
    AllocOp,
    BarrierOp,
    CopyOp,
    FreeOp,
    KernelOp,
    PlanIR,
    RecordOp,
    Rect,
    RecvOp,
    SendOp,
    WaitOp,
)

__all__ = [
    "HBFinding",
    "HBReport",
    "analyze_cluster_hb",
    "analyze_hb",
    "merge_hb_reports",
]

#: cap per-buffer conflict findings, like the sanitizer: one bad edge can
#: produce hundreds of textually identical pairs
_MAX_PER_BUFFER = 8

Clock = dict[str, int]


def _join(into: Clock, other: Clock) -> None:
    for key, value in other.items():
        if value > into.get(key, -1):
            into[key] = value


@dataclass(frozen=True)
class _HBOp:
    """One clocked operation (copy or kernel) on a stream."""

    seq: int
    stream: str
    name: str
    index: int
    clock: Clock

    @property
    def label(self) -> str:
        return f"#{self.seq}:{self.name}@{self.stream}"


@dataclass(frozen=True)
class _HBAccess:
    op: _HBOp
    kind: str  # "read" | "write"
    rect: Rect


def _happens_before(a: _HBOp, b: _HBOp) -> bool:
    return b.clock.get(a.stream, -1) >= a.index


@dataclass(frozen=True)
class HBFinding:
    """One ordering defect proven possible in some interleaving."""

    #: ``unordered-conflict`` | ``unsatisfiable-wait`` | ``dead-event``
    kind: str
    buffer: str
    streams: tuple[str, ...]
    first: str
    second: str
    detail: str

    def describe(self) -> str:
        where = f" on {self.buffer}" if self.buffer else ""
        return (
            f"[{self.kind}]{where} streams={'/'.join(self.streams)}: "
            f"{self.first} vs {self.second} — {self.detail}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buffer": self.buffer,
            "streams": list(self.streams),
            "first": self.first,
            "second": self.second,
            "detail": self.detail,
        }


@dataclass
class HBReport:
    """Result of the happens-before closure over one driver's IR."""

    algorithm: str
    device: str
    num_ops: int = 0
    num_streams: int = 0
    num_events: int = 0
    num_waits: int = 0
    findings: list[HBFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        head = (
            f"{self.algorithm} on {self.device}: {self.num_ops} clocked ops, "
            f"{self.num_streams} stream(s), {self.num_events} event(s), "
            f"{self.num_waits} wait(s)"
        )
        if self.ok:
            return head + " — every conflicting access ordered in all interleavings"
        lines = [head + f" — {len(self.findings)} finding(s):"]
        lines += ["  " + f.describe() for f in self.findings]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "device": self.device,
            "ok": self.ok,
            "num_ops": self.num_ops,
            "num_streams": self.num_streams,
            "num_events": self.num_events,
            "num_waits": self.num_waits,
            "findings": [f.to_dict() for f in self.findings],
        }


def analyze_hb(ir: PlanIR) -> HBReport:
    """Compute the must-happen-before closure of ``ir`` and scan it.

    Returns an :class:`HBReport` whose findings list every cross-stream
    conflicting access pair no synchronisation edge orders (with the
    block rectangles of both sides), every wait on a never-recorded
    event, and every dead record site.
    """
    stream_clock: dict[str, Clock] = {}
    stream_index: dict[str, int] = {}
    host_clock: Clock = {}
    event_clock: dict[int, Clock] = {}
    #: event id -> (stream, name, record label)
    record_sites: dict[int, tuple[str, str, str]] = {}
    waited: set[int] = set()
    accesses: dict[int, list[_HBAccess]] = {}
    findings: list[HBFinding] = []
    seq = 0
    num_waits = 0

    def clock_of(stream: str) -> Clock:
        if stream not in stream_clock:
            stream_clock[stream] = {}
            stream_index[stream] = 0
        return stream_clock[stream]

    def new_op(stream: str, name: str) -> _HBOp:
        nonlocal seq
        clock = clock_of(stream)
        _join(clock, host_clock)
        index = stream_index[stream]
        stream_index[stream] = index + 1
        clock[stream] = index
        op = _HBOp(seq=seq, stream=stream, name=name, index=index, clock=dict(clock))
        seq += 1
        return op

    def touch(op: _HBOp, buffer: int, kind: str, rect: Rect) -> None:
        if not rect.empty:
            accesses.setdefault(buffer, []).append(_HBAccess(op, kind, rect))

    for pos, op in enumerate(ir.ops):
        if isinstance(op, AllocOp):
            accesses.setdefault(op.buffer, [])
        elif isinstance(op, (FreeOp, BarrierOp)):
            # legacy cudaFree / fleet barrier: device-wide sync — all
            # in-flight work joins the host clock (sanitizer on_free)
            for clock in stream_clock.values():
                _join(host_clock, clock)
        elif isinstance(op, CopyOp):
            hb_op = new_op(op.stream, op.kind)
            touch(hb_op, op.access.buffer,
                  "write" if op.kind == "h2d" else "read", op.access.rect)
            if op.sync:
                _join(host_clock, hb_op.clock)
        elif isinstance(op, KernelOp):
            # annotate ops are full sanitizer ops too — they tick the clock
            hb_op = new_op(op.stream, op.name)
            for acc in op.reads:
                touch(hb_op, acc.buffer, "read", acc.rect)
            for acc in op.writes:
                touch(hb_op, acc.buffer, "write", acc.rect)
        elif isinstance(op, SendOp):
            # async network ops order within their stream only; the
            # cross-rank edges live in analyze_cluster_hb
            hb_op = new_op(op.stream, f"send:{op.tag}")
            touch(hb_op, op.access.buffer, "read", op.access.rect)
        elif isinstance(op, RecvOp):
            hb_op = new_op(op.stream, f"recv:{op.tag}")
            touch(hb_op, op.access.buffer, "write", op.access.rect)
        elif isinstance(op, RecordOp):
            event_clock[op.event] = dict(clock_of(op.stream))
            record_sites[op.event] = (
                op.stream, op.name, f"record({op.name})@{op.stream}#op{pos}"
            )
        elif isinstance(op, WaitOp):
            num_waits += 1
            snapshot = event_clock.get(op.event)
            if snapshot is None:
                findings.append(HBFinding(
                    kind="unsatisfiable-wait",
                    buffer="",
                    streams=(op.stream,),
                    first=f"wait(event#{op.event})@{op.stream}#op{pos}",
                    second="<no earlier record>",
                    detail=(
                        "wait names an event no earlier enqueued record "
                        "produces — the waiting stream blocks forever "
                        "(dropped record edge)"
                    ),
                ))
            else:
                waited.add(op.event)
                _join(clock_of(op.stream), snapshot)

    # --- race scan: every cross-stream conflicting overlapping pair must
    # be ordered by the closure -------------------------------------------
    for buf_id, accs in accesses.items():
        buf = ir.buffers[buf_id]
        emitted = 0
        seen: set[tuple] = set()
        for i, first in enumerate(accs):
            if emitted >= _MAX_PER_BUFFER:
                break
            for second in accs[i + 1:]:
                if first.op.stream == second.op.stream:
                    continue
                if first.kind == "read" and second.kind == "read":
                    continue
                if not first.rect.overlaps(second.rect):
                    continue
                if _happens_before(first.op, second.op) or _happens_before(
                    second.op, first.op
                ):
                    continue
                dedup = (
                    first.kind, second.kind,
                    first.op.stream, second.op.stream,
                    first.op.name, second.op.name,
                )
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append(HBFinding(
                    kind="unordered-conflict",
                    buffer=buf.name,
                    streams=(first.op.stream, second.op.stream),
                    first=f"{first.op.label} {first.kind}s {buf.name}{first.rect}",
                    second=f"{second.op.label} {second.kind}s {buf.name}{second.rect}",
                    detail=(
                        f"no happens-before path orders these accesses to "
                        f"{buf.name}{first.rect}∩{second.rect} in some "
                        f"interleaving ({first.kind}-{second.kind} conflict)"
                    ),
                ))
                emitted += 1
                if emitted >= _MAX_PER_BUFFER:
                    break

    # --- dead events: records never consumed by any wait ------------------
    # Per-instance check (any unwaited record is an orphan edge), grouped
    # per (stream, name) site for reporting so one elision bug does not
    # drown the report in per-iteration duplicates.
    site_dead: dict[tuple[str, str], list[int]] = {}
    for event_id, (stream, name, _label) in record_sites.items():
        if event_id not in waited:
            site_dead.setdefault((stream, name), []).append(event_id)
    for (stream, name), event_ids in site_dead.items():
        first_label = record_sites[event_ids[0]][2]
        findings.append(HBFinding(
            kind="dead-event",
            buffer="",
            streams=(stream,),
            first=first_label,
            second="<never waited>",
            detail=(
                f"event '{name}' has {len(event_ids)} record(s) on "
                f"{stream} that no wait ever consumes — the edge orders "
                "nothing (orphan record)"
            ),
        ))

    return HBReport(
        algorithm=ir.algorithm,
        device=ir.device,
        num_ops=seq,
        num_streams=len(stream_index),
        num_events=len(record_sites),
        num_waits=num_waits,
        findings=findings,
    )


class _RankState:
    """Per-rank vector-clock cursor for the cross-node HB closure.

    Stream keys are globally namespaced (``r<rank>/<stream>``) so clocks
    from every rank live in one vector-clock space; a recv joining a
    send's snapshot therefore transfers the sender's cross-rank history
    into the receiving stream.
    """

    def __init__(self, ir: PlanIR, seq: list[int]) -> None:
        self.ir = ir
        self.rank = ir.rank
        self.pos = 0
        self._seq = seq
        self.stream_clock: dict[str, Clock] = {}
        self.stream_index: dict[str, int] = {}
        self.host_clock: Clock = {}
        self.event_clock: dict[int, Clock] = {}
        self.record_sites: dict[int, tuple[str, str, str]] = {}
        self.waited: set[int] = set()
        self.num_waits = 0

    @property
    def done(self) -> bool:
        return self.pos >= len(self.ir.ops)

    @property
    def head(self):
        return self.ir.ops[self.pos]

    def sname(self, stream: str) -> str:
        return f"r{self.rank}/{stream}"

    def clock_of(self, stream: str) -> Clock:
        key = self.sname(stream)
        if key not in self.stream_clock:
            self.stream_clock[key] = {}
            self.stream_index[key] = 0
        return self.stream_clock[key]

    def new_op(self, stream: str, name: str) -> _HBOp:
        key = self.sname(stream)
        clock = self.clock_of(stream)
        _join(clock, self.host_clock)
        index = self.stream_index[key]
        self.stream_index[key] = index + 1
        clock[key] = index
        op = _HBOp(
            seq=self._seq[0], stream=key, name=name, index=index,
            clock=dict(clock),
        )
        self._seq[0] += 1
        return op


@dataclass(frozen=True)
class _PendingSend:
    hb: _HBOp
    key: tuple
    rect: Rect
    nbytes: int
    pos: int


def analyze_cluster_hb(
    irs: list[PlanIR], *, node_names: dict[int, str] | None = None
) -> HBReport:
    """Cross-node happens-before closure over one IR per cluster rank.

    Extends :func:`analyze_hb` with the inter-node edges: sends are
    buffered (the sender continues), each recv joins the vector-clock
    snapshot of the FIFO-matched send on its ``(src, dst, tag)`` channel,
    and a :class:`~repro.verifyplan.ir.BarrierOp` is a *fleet* barrier
    joining every rank's clocks. On top of the per-rank race/dead-event/
    unsatisfiable-wait scans this proves, in every interleaving:

    * **every recv matched** — a recv whose channel can never produce is
      ``orphaned-recv`` (mismatched-rank wiring, dropped broadcast);
    * **no orphaned sends** — a buffered message nobody receives is
      ``orphaned-send`` (duplicated collective contribution);
    * **no deadlocked collective** — ranks mutually blocked on recvs (or
      on recvs whose senders sit behind a fleet barrier) are a
      ``circular-wait``;
    * **version integrity** — a matched pair whose logical block keys
      disagree is a ``key-mismatch`` (the bytes arrive, but they are the
      wrong block).

    Findings carry node, link (``src→dst``), and block-rectangle
    attribution via ``node_names`` (rank id → display name).
    """
    names = dict(node_names or {})

    def rname(rank: int) -> str:
        return names.get(rank, f"rank{rank}")

    findings: list[HBFinding] = []
    seq = [0]
    states = [_RankState(ir, seq) for ir in irs]
    by_rank = {st.rank: st for st in states}
    #: (src, dst, tag) -> FIFO of buffered sends
    channels: dict[tuple[int, int, str], list[_PendingSend]] = {}
    accesses: dict[tuple[int, int], list[_HBAccess]] = {}

    def touch(st: _RankState, hb_op: _HBOp, buffer: int, kind: str,
              rect: Rect) -> None:
        if not rect.empty:
            accesses.setdefault((st.rank, buffer), []).append(
                _HBAccess(hb_op, kind, rect)
            )

    def step_local(st: _RankState) -> bool:
        """Process one non-blocking op; False when blocked or done."""
        if st.done:
            return False
        op = st.head
        if isinstance(op, (BarrierOp, RecvOp)):
            return False  # handled by the fleet loop
        if isinstance(op, AllocOp):
            accesses.setdefault((st.rank, op.buffer), [])
        elif isinstance(op, FreeOp):
            for clock in st.stream_clock.values():
                _join(st.host_clock, clock)
        elif isinstance(op, CopyOp):
            hb_op = st.new_op(op.stream, op.kind)
            touch(st, hb_op, op.access.buffer,
                  "write" if op.kind == "h2d" else "read", op.access.rect)
            if op.sync:
                _join(st.host_clock, hb_op.clock)
        elif isinstance(op, KernelOp):
            hb_op = st.new_op(op.stream, op.name)
            for acc in op.reads:
                touch(st, hb_op, acc.buffer, "read", acc.rect)
            for acc in op.writes:
                touch(st, hb_op, acc.buffer, "write", acc.rect)
        elif isinstance(op, SendOp):
            hb_op = st.new_op(op.stream, f"send:{op.tag}")
            touch(st, hb_op, op.access.buffer, "read", op.access.rect)
            channels.setdefault((st.rank, op.dst, op.tag), []).append(
                _PendingSend(
                    hb=hb_op, key=op.key, rect=op.access.rect,
                    nbytes=op.access.nbytes, pos=st.pos,
                )
            )
        elif isinstance(op, RecordOp):
            st.event_clock[op.event] = dict(st.clock_of(op.stream))
            st.record_sites[op.event] = (
                st.sname(op.stream), op.name,
                f"record({op.name})@{st.sname(op.stream)}#op{st.pos}",
            )
        elif isinstance(op, WaitOp):
            st.num_waits += 1
            snapshot = st.event_clock.get(op.event)
            if snapshot is None:
                findings.append(HBFinding(
                    kind="unsatisfiable-wait",
                    buffer="",
                    streams=(st.sname(op.stream),),
                    first=f"wait(event#{op.event})@{st.sname(op.stream)}"
                          f"#op{st.pos}",
                    second="<no earlier record>",
                    detail="wait names an event no earlier enqueued record "
                           "produces (dropped record edge)",
                ))
            else:
                st.waited.add(op.event)
                _join(st.clock_of(op.stream), snapshot)
        # CollectiveOp markers and any other op kinds are clockless
        st.pos += 1
        return True

    def exec_recv(st: _RankState, joined: _PendingSend | None) -> None:
        """Clock the recv at ``st.head`` (joining the matched send)."""
        op = st.head
        if joined is not None:
            _join(st.clock_of(op.stream), joined.hb.clock)
        hb_op = st.new_op(op.stream, f"recv:{op.tag}")
        touch(st, hb_op, op.access.buffer, "write", op.access.rect)
        if joined is not None:
            if joined.key != op.key:
                findings.append(HBFinding(
                    kind="key-mismatch",
                    buffer=str(op.key),
                    streams=(joined.hb.stream, hb_op.stream),
                    first=f"{joined.hb.label} sends block {joined.key}",
                    second=f"{hb_op.label} expects block {op.key}",
                    detail=(
                        f"link {rname(joined_src(op))}→{rname(st.rank)} "
                        f"tag {op.tag!r}: matched message carries "
                        f"{joined.key} but the receiver binds it to "
                        f"{op.key} — wrong block version"
                    ),
                ))
            elif not _happens_before(joined.hb, hb_op):  # pragma: no cover
                findings.append(HBFinding(
                    kind="unordered-conflict",
                    buffer=str(op.key),
                    streams=(joined.hb.stream, hb_op.stream),
                    first=joined.hb.label,
                    second=hb_op.label,
                    detail="matched send does not happen-before its recv",
                ))
        st.pos += 1

    def joined_src(op) -> int:
        return op.src

    # --- fleet progress loop ---------------------------------------------
    while True:
        progressed = False
        for st in states:
            while step_local(st):
                progressed = True
            if not st.done and isinstance(st.head, RecvOp):
                op = st.head
                pending = channels.get((op.src, st.rank, op.tag))
                if pending:
                    exec_recv(st, pending.pop(0))
                    progressed = True
                    while step_local(st):
                        pass
        if all(st.done for st in states):
            break
        at_barrier = [
            st for st in states
            if not st.done and isinstance(st.head, BarrierOp)
        ]
        if at_barrier and all(
            st.done or isinstance(st.head, BarrierOp) for st in states
        ):
            # fleet barrier: everything enqueued so far on any rank
            # happens-before everything after the barrier on every rank
            joined: Clock = {}
            for st in states:
                _join(joined, st.host_clock)
                for clock in st.stream_clock.values():
                    _join(joined, clock)
            for st in at_barrier:
                st.host_clock = dict(joined)
                st.pos += 1
            continue
        if progressed:
            continue
        # --- stall: no rank can advance — classify every blocked recv ----
        blocked = [
            st for st in states if not st.done and isinstance(st.head, RecvOp)
        ]
        for st in blocked:
            op = st.head
            sender = by_rank.get(op.src)
            link = f"{rname(op.src)}→{rname(st.rank)}"
            # a sender that is finished — or parked at a fleet barrier the
            # receiver itself gates — can never produce the message: the
            # recv is orphaned. Only a sender blocked on its *own* recv
            # forms a genuine wait cycle.
            if (
                sender is None
                or sender.done
                or isinstance(sender.head, BarrierOp)
            ):
                findings.append(HBFinding(
                    kind="orphaned-recv",
                    buffer=str(op.key),
                    streams=(st.sname(op.stream),),
                    first=f"recv(tag={op.tag!r})@{st.sname(op.stream)}"
                          f"#op{st.pos}",
                    second="<no matching send>",
                    detail=(
                        f"link {link} block {op.key} "
                        f"{op.access.rect}: {rname(op.src)} enqueues no "
                        f"matching send — mismatched rank or dropped "
                        f"message; {rname(st.rank)} blocks forever"
                    ),
                ))
            else:
                findings.append(HBFinding(
                    kind="circular-wait",
                    buffer=str(op.key),
                    streams=(st.sname(op.stream), sender.sname("default")),
                    first=f"recv(tag={op.tag!r})@{st.sname(op.stream)}"
                          f"#op{st.pos}",
                    second=f"{rname(op.src)} blocked at op#{sender.pos}",
                    detail=(
                        f"link {link} block {op.key}: the matching send "
                        f"sits behind {rname(op.src)}'s own blocked "
                        f"op — deadlocked collective (circular wait)"
                    ),
                ))
        if not blocked:  # pragma: no cover - defensive
            break
        for st in blocked:  # force-advance to surface further findings
            exec_recv(st, None)

    # --- orphaned sends ---------------------------------------------------
    for (src, dst, tag), pending in channels.items():
        for entry in pending:
            findings.append(HBFinding(
                kind="orphaned-send",
                buffer=str(entry.key),
                streams=(entry.hb.stream,),
                first=f"{entry.hb.label} ({entry.nbytes} B)",
                second="<never received>",
                detail=(
                    f"link {rname(src)}→{rname(dst)} tag {tag!r} block "
                    f"{entry.key} {entry.rect}: no recv consumes this "
                    f"message — duplicated contribution or dropped "
                    f"receive edge"
                ),
            ))

    # --- per-rank race scan (global clocks, rank-local buffers) ----------
    for (rank, buf_id), accs in accesses.items():
        buf = by_rank[rank].ir.buffers[buf_id]
        emitted = 0
        seen: set[tuple] = set()
        for i, first in enumerate(accs):
            if emitted >= _MAX_PER_BUFFER:
                break
            for second in accs[i + 1:]:
                if first.op.stream == second.op.stream:
                    continue
                if first.kind == "read" and second.kind == "read":
                    continue
                if not first.rect.overlaps(second.rect):
                    continue
                if _happens_before(first.op, second.op) or _happens_before(
                    second.op, first.op
                ):
                    continue
                dedup = (
                    first.kind, second.kind,
                    first.op.stream, second.op.stream,
                    first.op.name, second.op.name,
                )
                if dedup in seen:
                    continue
                seen.add(dedup)
                findings.append(HBFinding(
                    kind="unordered-conflict",
                    buffer=f"{rname(rank)}:{buf.name}",
                    streams=(first.op.stream, second.op.stream),
                    first=f"{first.op.label} {first.kind}s "
                          f"{buf.name}{first.rect}",
                    second=f"{second.op.label} {second.kind}s "
                           f"{buf.name}{second.rect}",
                    detail=(
                        f"no happens-before path orders these accesses on "
                        f"{rname(rank)} in some interleaving "
                        f"({first.kind}-{second.kind} conflict)"
                    ),
                ))
                emitted += 1
                if emitted >= _MAX_PER_BUFFER:
                    break

    # --- dead events per rank --------------------------------------------
    for st in states:
        site_dead: dict[tuple[str, str], list[int]] = {}
        for event_id, (stream, name, _label) in st.record_sites.items():
            if event_id not in st.waited:
                site_dead.setdefault((stream, name), []).append(event_id)
        for (stream, name), event_ids in site_dead.items():
            findings.append(HBFinding(
                kind="dead-event",
                buffer="",
                streams=(stream,),
                first=st.record_sites[event_ids[0]][2],
                second="<never waited>",
                detail=(
                    f"event '{name}' has {len(event_ids)} record(s) on "
                    f"{stream} that no wait ever consumes (orphan record)"
                ),
            ))

    base = irs[0].device.split("#")[0] if irs else "cluster"
    return HBReport(
        algorithm=irs[0].algorithm if irs else "",
        device=f"{base}×{len(irs)}",
        num_ops=seq[0],
        num_streams=sum(len(st.stream_index) for st in states),
        num_events=sum(len(st.record_sites) for st in states),
        num_waits=sum(st.num_waits for st in states),
        findings=findings,
    )


def merge_hb_reports(reports: list[HBReport]) -> HBReport:
    """Fold per-device reports (multi-GPU) into one fleet report."""
    if not reports:
        return HBReport(algorithm="", device="")
    merged = HBReport(
        algorithm=reports[0].algorithm,
        device=f"{reports[0].device.split('#')[0]}×{len(reports)}",
    )
    for report in reports:
        merged.num_ops += report.num_ops
        merged.num_streams += report.num_streams
        merged.num_events += report.num_events
        merged.num_waits += report.num_waits
        merged.findings.extend(report.findings)
    return merged
