"""Figure 7 — estimated vs actual times, boundary & Johnson, K80.

Same methodology as Figure 6 on the older device (generality check: the
cost models carry over with only the device constants changing — including
the K80's slower PCIe at 7.23 GB/s and ~5x lower kernel rates).
"""

from repro.bench import device_profile
from repro.gpu.device import K80

from benchmarks.test_fig6_cost_model_v100 import check_record, run_cost_model_experiment


def test_fig7_cost_model_k80(benchmark):
    spec = device_profile("ratio", base=K80)
    record = benchmark.pedantic(
        run_cost_model_experiment, args=(spec, "fig7", "K80"), rounds=1, iterations=1
    )
    record.print()
    record.save()
    check_record(record)


if __name__ == "__main__":
    run_cost_model_experiment(device_profile("ratio", base=K80), "fig7", "K80").print()
