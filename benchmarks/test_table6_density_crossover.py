"""Table VI — selection between Johnson's and blocked Floyd–Warshall.

Paper: synthetic R-MAT graphs with n = 80,000 fixed and m doubling each
setup. The blocked FW time depends only on n (flat across setups) while
Johnson's grows with m; past a density threshold FW wins, and the selector
— FW extrapolated from one n₀ = 70,000 calibration run, Johnson from 5
sampled batches — always picks the measured winner.

Runs on the "crossover" device profile (``relax_exponent = 0.5``), which
positions the FW/Johnson crossover at the paper's average-degree operating
point at reduced scale — see EXPERIMENTS.md "device profiles".
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_floyd_warshall, ooc_johnson
from repro.gpu.device import Device
from repro.graphs.generators import rmat
from repro.graphs.suite import DEFAULT_SCALE
from repro.select import Calibration, estimate_fw, estimate_johnson

#: paper: n fixed at 80,000 (scaled), m doubling per setup
PAPER_N = 80_000
EDGE_FACTORS = [2, 4, 8, 16, 32, 64, 128]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("crossover")
    n = int(PAPER_N * DEFAULT_SCALE)
    calibration = Calibration(
        spec, fw_n0=int(70_000 * DEFAULT_SCALE)  # the paper's n0 = 70,000
    ).run(with_large_separator_bins=False)
    record = ExperimentRecord(
        experiment="table6",
        title="Johnson vs blocked FW across a density sweep (R-MAT, n fixed)",
        paper_expectation=(
            "FW time flat in m; Johnson grows with m; crossover at moderate "
            "density; selector always picks the measured winner"
        ),
    )
    # FW depends only on n: run it once, reuse (the paper's column repeats
    # the same number for this reason).
    fw_actual = ooc_floyd_warshall(
        rmat(n, n * 8, seed=1), Device(spec)
    ).simulated_seconds
    fw_est = None
    for factor in EDGE_FACTORS:
        graph = rmat(n, n * factor, seed=factor, name=f"rmat-d{factor}")
        if fw_est is None:
            fw_est = estimate_fw(graph, spec, calibration).total_seconds
        est_j = estimate_johnson(graph, Device(spec), seed=0)
        actual_j = ooc_johnson(graph, Device(spec)).simulated_seconds
        predicted = "floyd-warshall" if fw_est < est_j.total_seconds else "johnson"
        actual = "floyd-warshall" if fw_actual < actual_j else "johnson"
        record.add(
            edge_factor=factor,
            m=graph.num_edges,
            density_pct=100 * graph.density * DEFAULT_SCALE,
            fw_actual=fw_actual,
            fw_est=fw_est,
            johnson_actual=actual_j,
            johnson_est=est_j.total_seconds,
            predicted=predicted,
            actual=actual,
            correct=predicted == actual,
        )
    return record


def test_table6_density_crossover(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    rows = record.rows
    # Johnson's time grows monotonically with m (within noise)
    times = [r["johnson_actual"] for r in rows]
    assert times[-1] > times[0] * 5
    # a crossover exists: Johnson wins at the sparse end, FW at the dense end
    assert rows[0]["actual"] == "johnson"
    assert rows[-1]["actual"] == "floyd-warshall"
    # the selector is right everywhere (the paper's headline claim)
    assert all(r["correct"] for r in rows)
    benchmark.extra_info["crossover_edge_factor"] = next(
        r["edge_factor"] for r in rows if r["actual"] == "floyd-warshall"
    )


if __name__ == "__main__":
    run_experiment().print()
