"""Section IV-B.2 — Johnson batch-time variance.

Paper: "we compute the standard deviations of execution times of each batch
for several graphs, and found that it ranges between 1.67% and 13.4% of the
mean execution time" — the property that justifies estimating Johnson's
total time from 5 random batches.
"""

import numpy as np

from repro.bench import ExperimentRecord, device_profile
from repro.core.minplus import DIST_DTYPE
from repro.core.ooc_johnson import plan_batch_size, run_mssp_batch
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph

GRAPHS = ["usroads", "wi2010", "onera_dual", "luxembourg_osm"]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    record = ExperimentRecord(
        experiment="batch_variance",
        title="Per-batch MSSP kernel time spread (std/mean)",
        paper_expectation="std-dev between 1.67% and 13.4% of the mean",
    )
    for name in GRAPHS:
        graph = get_suite_graph(name, DEFAULT_SCALE)
        device = Device(spec)
        n = graph.num_vertices
        bat = min(plan_batch_size(graph, spec), max(1, n // 8))
        out = np.empty((bat, n), dtype=DIST_DTYPE)
        times = []
        stream = device.default_stream
        for b in range(n // bat):
            lo, hi = b * bat, min((b + 1) * bat, n)
            sources = np.arange(lo, hi, dtype=np.int64)
            before = stream.ready_at
            run_mssp_batch(
                graph, device, stream, sources, out[: sources.size],
                bat=bat, delta=None, dynamic_parallelism=True, heavy_degree=32,
            )
            times.append(stream.ready_at - before)
        times = np.array(times)
        record.add(
            graph=name,
            batches=len(times),
            mean_s=float(times.mean()),
            std_over_mean=float(times.std() / times.mean()),
        )
    return record


def test_batch_variance(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    spreads = [r["std_over_mean"] for r in record.rows]
    # per-batch times are near-uniform — the sampling estimator's premise
    # (paper band 1.67%-13.4%; we accept up to 25% before the premise breaks)
    assert max(spreads) < 0.25


if __name__ == "__main__":
    run_experiment().print()
