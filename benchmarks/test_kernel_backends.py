"""Kernel-backend acceptance benchmark (ISSUE 1).

Runs the full wall-clock sweep from :mod:`repro.bench.kernels` — every
registered backend on the headline 1024³ float32 min-plus product — and
enforces the two acceptance criteria:

* every backend's result is **bit-identical** to the reference rank-1 loop;
* the best non-reference backend reaches **≥ 3×** the reference Gop/s
  whenever a compiled flavor (numba or the ctypes C kernel) is active —
  pure-numpy tiling alone tops out well under 3× on one core, so the bound
  is gated on ``JITBackend().compiled``.

The sweep is persisted to ``BENCH_kernels.json`` at the repo root (plus a
mirror record in ``benchmarks/results/`` for ``python -m repro report``),
so running this file regenerates the repo's kernel performance baseline.
"""

import pytest

from repro.bench.kernels import save_sweep, sweep_backends
from repro.core.backends.jit import JITBackend


@pytest.fixture(scope="module")
def sweep():
    rows = sweep_backends(sizes=(1024,), tiles=(64, 128, 256), repeats=1)
    save_sweep(rows)
    return rows


def test_all_backends_bit_identical_at_1024(sweep):
    diverged = [r for r in sweep if r["identical"] is False]
    assert not diverged, f"backends diverged from reference: {diverged}"


def test_best_backend_speedup(sweep):
    ref = next(r for r in sweep if r["backend"] == "reference")
    best = max(
        (r for r in sweep if r["backend"] != "reference"), key=lambda r: r["gops"]
    )
    print(
        f"\nreference {ref['gops']:.2f} Gop/s; best {best['backend']}"
        f"[{best['flavor']}] tile={best['tile']} {best['gops']:.2f} Gop/s "
        f"({best['speedup']:.2f}x)"
    )
    if JITBackend().compiled:
        assert best["speedup"] >= 3.0, (
            f"compiled flavor active but best backend only {best['speedup']:.2f}x"
        )
    else:  # numba absent AND no C compiler: tiling alone must still not regress
        assert best["speedup"] >= 0.9


def test_threaded_backend_matches_serial_inner(sweep):
    threaded = [r for r in sweep if r["backend"] == "threaded"]
    assert threaded and all(r["identical"] for r in threaded)
