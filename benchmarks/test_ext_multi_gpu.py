"""Extension — multi-GPU boundary algorithm scaling.

The boundary algorithm descends from a multi-node scheme [Djidjev et al.]
and the paper's conclusion motivates scaling beyond one device. This
experiment distributes components (step 2) and output block-rows (step 4)
across 1–4 simulated V100s, with the boundary-graph closure (step 3) serial
on one device — an Amdahl profile: near-linear in the distributed steps,
bounded by the serial closure and load imbalance.
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core.multi_gpu import ooc_boundary_multi
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph

DEVICE_COUNTS = [1, 2, 4]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    record = ExperimentRecord(
        experiment="ext_multi_gpu",
        title="Boundary algorithm across multiple simulated V100s",
        paper_expectation=(
            "extension (paper future work): sublinear but monotone scaling; "
            "serial boundary closure bounds the speedup"
        ),
    )
    for name in ("usroads", "nm2010"):
        graph = get_suite_graph(name, DEFAULT_SCALE)
        base = None
        for nd in DEVICE_COUNTS:
            devices = [Device(spec) for _ in range(nd)]
            res = ooc_boundary_multi(graph, devices, seed=0)
            if base is None:
                base = res.simulated_seconds
            record.add(
                graph=name,
                devices=nd,
                seconds=res.simulated_seconds,
                speedup=base / res.simulated_seconds,
                imbalance=res.stats["imbalance"],
            )
    return record


def test_ext_multi_gpu(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    for name in ("usroads", "nm2010"):
        rows = sorted(
            (r for r in record.rows if r["graph"] == name), key=lambda r: r["devices"]
        )
        speedups = [r["speedup"] for r in rows]
        # monotone improvement, sublinear (Amdahl)
        assert speedups == sorted(speedups), name
        assert speedups[-1] > 1.5, name
        assert speedups[-1] < 4.0, name


if __name__ == "__main__":
    run_experiment().print()
