"""Shared fixtures for the benchmark harness.

Each benchmark file regenerates one table or figure of the paper (see
DESIGN.md §4). Run them with::

    pytest benchmarks/ --benchmark-only

Wall time measured by pytest-benchmark covers the harness run; the numbers
the paper reports are the *simulated* device seconds, which each benchmark
prints and saves as a JSON record under ``benchmarks/results/``.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running benchmark")


@pytest.fixture(scope="session")
def run_once():
    """Memoise expensive sub-computations shared between benchmarks."""
    cache = {}

    def _run(key, fn):
        if key not in cache:
            cache[key] = fn()
        return cache[key]

    return _run
