"""Robustness — sensitivity of the Fig 2 conclusion to model constants.

The device model's rates are *calibrated*, so this experiment perturbs each
load-bearing constant by 0.5×/2× and re-measures the boundary-vs-BGL-plus
speedup on usroads. The conclusion ("boundary wins by roughly an order of
magnitude") must survive every 2× miscalibration; the reported elasticities
show which constants the magnitude actually rides on.
"""

from repro.baselines import bgl_plus_apsp
from repro.bench import ExperimentRecord, cpu_profile, device_profile
from repro.core import ooc_boundary
from repro.gpu.device import Device
from repro.gpu.sweep import sweep_constant
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph

FIELDS = ["minplus_rate", "transfer_throughput", "transfer_latency", "mem_bandwidth"]


def run_experiment() -> ExperimentRecord:
    base_spec = device_profile("ratio")
    cpu = cpu_profile()
    graph = get_suite_graph("usroads", DEFAULT_SCALE)
    bgl_seconds = bgl_plus_apsp(graph, cpu, seed=1).simulated_seconds

    def speedup_metric(spec):
        res = ooc_boundary(graph, Device(spec), seed=0)
        return bgl_seconds / res.simulated_seconds

    record = ExperimentRecord(
        experiment="model_sensitivity",
        title="Fig 2 speedup under 0.5x/2x perturbation of device constants",
        paper_expectation=(
            "the order-of-magnitude conclusion survives any single 2x "
            "miscalibration; the magnitude depends only on the directly "
            "measured PCIe throughput, not on any inferred constant"
        ),
    )
    for field in FIELDS:
        result = sweep_constant(base_spec, field, speedup_metric)
        lo = min(p.value for p in result.points)
        hi = max(p.value for p in result.points)
        record.add(
            constant=field,
            speedup_at_half=result.points[0].value,
            speedup_at_base=result.baseline,
            speedup_at_double=result.points[-1].value,
            elasticity=result.elasticity,
            min_speedup=lo,
            max_speedup=hi,
        )
    return record


def test_model_sensitivity(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    rows = {r["constant"]: r for r in record.rows}
    for row in record.rows:
        # the win never drops below ~4x under any single 2x miscalibration
        assert row["min_speedup"] > 4.0, row["constant"]
    # every *inferred* (calibrated) constant is nearly irrelevant ...
    for field in ("minplus_rate", "transfer_latency", "mem_bandwidth"):
        assert abs(rows[field]["elasticity"]) < 0.2, field
    # ... while the magnitude rides on PCIe throughput alone — which is the
    # one constant the paper measured directly with nvprof (11.75 GB/s), so
    # the calibration risk is concentrated where there is no calibration
    assert rows["transfer_throughput"]["elasticity"] > 0.5


if __name__ == "__main__":
    run_experiment().print()
