"""Robustness — sensitivity of the headline results to the weight model.

The paper treats SuiteSparse matrices as graphs with ``int`` distances but
never states where the weights come from (matrix values? unit? random?).
A faithful reproduction should not hinge on that unstated choice: this
experiment re-runs the Fig 2 comparison (boundary vs BGL-plus) on the same
usroads topology under three weight models and checks the speedup band
holds for all of them.
"""

import numpy as np

from repro.baselines import bgl_plus_apsp
from repro.bench import ExperimentRecord, cpu_profile, device_profile
from repro.core import ooc_boundary
from repro.gpu.device import Device
from repro.graphs.csr import CSRGraph
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph


def reweighted(graph: CSRGraph, model: str, seed: int = 0) -> CSRGraph:
    src, dst, w = graph.edge_array()
    rng = np.random.default_rng(seed)
    und = src < dst  # keep symmetric pairs symmetric
    if model == "unit":
        new_und = np.ones(int(und.sum()))
    elif model == "uniform-1-100":
        new_und = rng.integers(1, 101, size=int(und.sum())).astype(float)
    elif model == "heavy-tailed":
        new_und = np.ceil(rng.pareto(1.5, size=int(und.sum())) * 10 + 1)
        new_und = np.minimum(new_und, 10_000.0)
    else:
        raise ValueError(model)
    s2, d2 = src[und], dst[und]
    return CSRGraph.from_edges(
        graph.num_vertices,
        np.concatenate([s2, d2]),
        np.concatenate([d2, s2]),
        np.concatenate([new_und, new_und]),
        name=f"{graph.name}:{model}",
    )


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    cpu = cpu_profile()
    record = ExperimentRecord(
        experiment="weight_sensitivity",
        title="Fig 2 comparison under three edge-weight models (usroads)",
        paper_expectation=(
            "the paper does not state its weight model; the boundary-vs-BGL "
            "speedup band should be insensitive to it"
        ),
    )
    base = get_suite_graph("usroads", DEFAULT_SCALE)
    for model in ("unit", "uniform-1-100", "heavy-tailed"):
        graph = reweighted(base, model, seed=3)
        res = ooc_boundary(graph, Device(spec), seed=0)
        bgl = bgl_plus_apsp(graph, cpu, seed=1)
        record.add(
            weights=model,
            boundary_s=res.simulated_seconds,
            bgl_plus_s=bgl.simulated_seconds,
            speedup=bgl.simulated_seconds / res.simulated_seconds,
        )
    return record


def test_weight_sensitivity(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    speedups = [r["speedup"] for r in record.rows]
    # the band holds under every weight model, within a factor ~2 spread
    assert min(speedups) > 4.0
    assert max(speedups) / min(speedups) < 2.5


if __name__ == "__main__":
    run_experiment().print()
