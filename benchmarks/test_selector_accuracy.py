"""Section V-E — selector accuracy across the evaluation graphs.

Paper: "our selector can always select the most efficient implementation
for our set of graphs based on our cost models" — evaluated on SuiteSparse
graphs with 80,000–100,000 vertices (scaled here), after the density filter
prunes the candidate set.
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import (
    BoundaryInfeasibleError,
    ooc_boundary,
    ooc_floyd_warshall,
    ooc_johnson,
)
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, list_suite
from repro.select import Calibration, Selector

#: the paper sweeps graphs with n in [80k, 100k]; our scaled suite spans a
#: comparable relative range — use every Table III graph instead
GRAPHS = [e for e in list_suite(tier="cpu-fit")]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    selector = Selector(
        spec, Calibration(spec), density_scale=DEFAULT_SCALE, seed=0
    )
    record = ExperimentRecord(
        experiment="selector_accuracy",
        title="Selector vs measured-best implementation (Table III graphs)",
        paper_expectation="the selector always picks the measured winner",
    )
    runners = {
        "johnson": lambda g: ooc_johnson(g, Device(spec)).simulated_seconds,
        "boundary": lambda g: ooc_boundary(g, Device(spec), seed=0).simulated_seconds,
        "floyd-warshall": lambda g: ooc_floyd_warshall(g, Device(spec)).simulated_seconds,
    }
    # the big FEM graphs are wall-clock heavy under Johnson; skip the four
    # largest (their selection story is identical to the retained ones)
    skip = {"pkustk14", "SiO2", "bmwcra_1", "gearbox"}
    for entry in GRAPHS:
        if entry.name in skip:
            continue
        graph = entry.generate(DEFAULT_SCALE)
        report = selector.select(graph, device=Device(spec))
        measured = {}
        for cand in report.candidates:
            if cand in report.infeasible:
                continue
            try:
                measured[cand] = runners[cand](graph)
            except BoundaryInfeasibleError:
                continue
        best = min(measured, key=measured.get)
        record.add(
            graph=entry.name,
            band=report.band,
            candidates="/".join(report.candidates),
            selected=report.algorithm,
            measured_best=best,
            correct=report.algorithm == best,
            **{f"{k}_s": v for k, v in measured.items()},
        )
    correct = sum(r["correct"] for r in record.rows)
    record.note(f"correct selections: {correct}/{len(record.rows)}")
    return record


def test_selector_accuracy(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    assert all(r["correct"] for r in record.rows)


if __name__ == "__main__":
    run_experiment().print()
