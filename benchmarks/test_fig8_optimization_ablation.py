"""Figure 8 — boundary-algorithm optimisation ablation.

Paper (§V-F): on the small-separator graphs, with k = √n/4 components:

* **transfer batching** speeds the boundary algorithm up by
  **1.988–5.706×** (the naive version spends 69.96–83.90% of its time in
  k² small strided transfers);
* **overlapping** transfers with computation adds **12.7–29.1%** on top.

This experiment uses the "transfer" device profile (physical PCIe latency
and throughput) so the small transfers sit in the same latency-bound regime
as the paper's — see EXPERIMENTS.md "device profiles".
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_boundary
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, list_suite

PAPER_BATCHING = (1.988, 5.706)
PAPER_OVERLAP = (0.127, 0.291)


def run_experiment() -> ExperimentRecord:
    spec = device_profile("transfer")
    record = ExperimentRecord(
        experiment="fig8",
        title="Boundary algorithm: transfer batching and overlap ablation",
        paper_expectation=(
            f"batching {PAPER_BATCHING[0]}-{PAPER_BATCHING[1]}x; overlap "
            f"+{PAPER_OVERLAP[0]:.1%}-{PAPER_OVERLAP[1]:.1%}; naive version "
            "spends 69.96-83.90% of its time transferring"
        ),
    )
    for entry in list_suite(tier="cpu-fit", small_separator=True):
        graph = entry.generate(DEFAULT_SCALE)
        naive = ooc_boundary(
            graph, Device(spec), batch_transfers=False, overlap=False, seed=0
        )
        batched = ooc_boundary(
            graph, Device(spec), batch_transfers=True, overlap=False, seed=0
        )
        overlapped = ooc_boundary(
            graph, Device(spec), batch_transfers=True, overlap=True, seed=0
        )
        t0, t1, t2 = (
            naive.simulated_seconds,
            batched.simulated_seconds,
            overlapped.simulated_seconds,
        )
        record.add(
            graph=entry.name,
            naive_s=t0,
            batched_s=t1,
            overlapped_s=t2,
            batching_speedup=t0 / t1,
            overlap_gain=(t1 - t2) / t2,
            double_buffered=overlapped.stats["num_buffers"] == 2,
            naive_transfer_frac=(
                naive.stats["transfer_seconds"] / t0
            ),
        )
    sp = [r["batching_speedup"] for r in record.rows]
    ov = [r["overlap_gain"] for r in record.rows if r["double_buffered"]]
    record.note(
        f"batching {min(sp):.2f}-{max(sp):.2f}x (paper {PAPER_BATCHING[0]}-"
        f"{PAPER_BATCHING[1]}x); overlap +{min(ov):.1%}-+{max(ov):.1%} on the "
        f"{len(ov)} graphs with room for double buffering "
        f"(paper +{PAPER_OVERLAP[0]:.1%}-+{PAPER_OVERLAP[1]:.1%}); the "
        "largest redistrict stand-ins lack the headroom at 1/64 scale — "
        "strip/memory grows as s^-0.5 (EXPERIMENTS.md)"
    )
    return record


def test_fig8_optimization_ablation(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    sp = [r["batching_speedup"] for r in record.rows]
    # batching lands in (or near) the paper's 1.99-5.71x band
    assert min(sp) > 1.5
    assert max(sp) < 8.0
    # overlap helps wherever double buffering fits, by a paper-like fraction
    ov = [r["overlap_gain"] for r in record.rows if r["double_buffered"]]
    assert ov, "double buffering engaged on no graph"
    assert min(ov) > 0.0
    assert max(ov) < 0.6
    # and never hurts where it does not
    rest = [r["overlap_gain"] for r in record.rows if not r["double_buffered"]]
    assert all(abs(g) < 0.02 for g in rest)
    # unbatched transfers dominate, as the paper reports (69.96-83.90%)
    fracs = [r["naive_transfer_frac"] for r in record.rows]
    assert min(fracs) > 0.5
    benchmark.extra_info["batching"] = (min(sp), max(sp))
    benchmark.extra_info["overlap"] = (min(ov), max(ov))


if __name__ == "__main__":
    run_experiment().print()
