"""Figure 5 — execution times for graphs whose output exceeds CPU memory.

Paper: the 10 Table IV graphs produce distance matrices too large even for
the 128 GB host, yet the out-of-core implementations still process them
(streaming the output); none of the compared implementations could. The
figure reports absolute execution times.

Our stand-ins run at 1/128 scale with the host store in ``disk`` mode
(numpy memmap), exercising the same host-spill path.
"""

from repro.baselines.common import sample_sources
from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_johnson
from repro.gpu.device import Device
from repro.graphs.suite import list_suite

SCALE = 1.0 / 128.0


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio", scale=SCALE)
    record = ExperimentRecord(
        experiment="fig5",
        title="Execution times, output exceeds CPU memory (disk-backed store)",
        paper_expectation=(
            "all 10 Table IV graphs complete; times grow with n and m; no "
            "baseline can process them at all"
        ),
    )
    import numpy as np
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    for entry in list_suite(tier="cpu-exceed"):
        graph = entry.generate(SCALE)
        device = Device(spec)
        res = ooc_johnson(graph, device, store_mode="disk")
        # spot-check correctness of the spilled output on sampled rows
        rows = sample_sources(graph.num_vertices, 3, seed=7)
        oracle = sp_dijkstra(graph.to_scipy(), indices=rows)
        got = np.vstack([res.row(int(r)) for r in rows])
        assert np.allclose(got, oracle), entry.name
        record.add(
            graph=entry.name,
            family=entry.family,
            n=graph.num_vertices,
            m=graph.num_edges,
            johnson_s=res.simulated_seconds,
            output_mb=res.store.nbytes / 2**20,
        )
        res.store.close()
    return record


def test_fig5_large_matrices(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    assert len(record.rows) == 10  # every Table IV graph completes
    times = {r["graph"]: r["johnson_s"] for r in record.rows}
    # largest graphs cost the most (shape check, af_shell1 is the biggest)
    assert times["af_shell1"] > times["stomach"]
    benchmark.extra_info["total_simulated_s"] = sum(times.values())


if __name__ == "__main__":
    run_experiment().print()
