"""Figure 4 — comparison against SuperFW and Galois (reported numbers).

Paper: on the "other sparse" graphs, the out-of-core Johnson implementation
is **4.70–69.2×** faster than SuperFW (a state-of-the-art multicore blocked
Floyd–Warshall [31]) and **79.93–152.62×** faster than the Galois library's
delta-stepping APSP, on a 32-core Haswell whose numbers the paper takes
from the literature — for all graphs except net4-1.
"""

from repro.baselines import galois_apsp, super_fw_apsp
from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_johnson
from repro.cpumodel import HASWELL_32
from repro.gpu.device import Device
from repro.graphs.suite import list_suite

SCALE = 1.0 / 128.0
PAPER_SUPERFW_BAND = (4.70, 69.2)
PAPER_GALOIS_BAND = (79.93, 152.62)


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio", scale=SCALE)
    cpu = HASWELL_32.scaled(SCALE)
    record = ExperimentRecord(
        experiment="fig4",
        title="Out-of-core Johnson vs SuperFW and Galois (reported-hardware model)",
        paper_expectation=(
            f"speedup over SuperFW {PAPER_SUPERFW_BAND[0]}-{PAPER_SUPERFW_BAND[1]}x, "
            f"over Galois {PAPER_GALOIS_BAND[0]}-{PAPER_GALOIS_BAND[1]}x "
            "(all graphs except net4-1)"
        ),
    )
    for entry in list_suite(tier="cpu-fit", small_separator=False):
        graph = entry.generate(SCALE)
        res = ooc_johnson(graph, Device(spec))
        sfw = super_fw_apsp(graph, cpu)
        gal = galois_apsp(graph, cpu, seed=1)
        record.add(
            graph=entry.name,
            n=graph.num_vertices,
            m=graph.num_edges,
            johnson_s=res.simulated_seconds,
            superfw_s=sfw.simulated_seconds,
            galois_s=gal.simulated_seconds,
            vs_superfw=sfw.simulated_seconds / res.simulated_seconds,
            vs_galois=gal.simulated_seconds / res.simulated_seconds,
        )
    return record


def test_fig4_literature_baselines(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    sfw = [r["vs_superfw"] for r in record.rows]
    gal = [r["vs_galois"] for r in record.rows]
    # the paper's directional claims: the out-of-core Johnson beats both
    # baselines on every graph, by at least the paper's lower bounds
    # (absolute upper ends overshoot — our SuperFW model is n³-only while
    # Johnson time tracks m; see EXPERIMENTS.md)
    assert min(sfw) > 4.7
    assert min(gal) > 20.0
    assert max(gal) < 200.0
    benchmark.extra_info["vs_superfw"] = (min(sfw), max(sfw))
    benchmark.extra_info["vs_galois"] = (min(gal), max(gal))


if __name__ == "__main__":
    run_experiment().print()
