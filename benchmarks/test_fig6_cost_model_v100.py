"""Figures 6 — estimated vs actual times, boundary & Johnson, V100.

Paper: for graphs with a small separator (density < 0.01%, so the selector
chooses between Johnson's and the boundary algorithm), the cost models
predict the real execution times closely, and the boundary algorithm is
always both predicted and measured faster — so the selector is always
right on these graphs.
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_boundary, ooc_johnson
from repro.gpu.device import Device, DeviceSpec
from repro.graphs.suite import DEFAULT_SCALE, list_suite
from repro.select import Calibration, estimate_boundary, estimate_johnson


def run_cost_model_experiment(spec: DeviceSpec, experiment: str, device_name: str) -> ExperimentRecord:
    calibration = Calibration(spec).run(with_large_separator_bins=False)
    record = ExperimentRecord(
        experiment=experiment,
        title=f"Estimated vs actual times, small-separator graphs, {device_name}",
        paper_expectation=(
            "cost models track the measured times; boundary < Johnson on "
            "every small-separator graph, so selection is always correct"
        ),
    )
    for entry in list_suite(tier="cpu-fit", small_separator=True):
        graph = entry.generate(DEFAULT_SCALE)
        est_b = estimate_boundary(graph, spec, calibration, seed=0)
        actual_b = ooc_boundary(graph, Device(spec), seed=0).simulated_seconds
        est_j = estimate_johnson(graph, Device(spec), seed=0)
        actual_j = ooc_johnson(graph, Device(spec)).simulated_seconds
        record.add(
            graph=entry.name,
            boundary_est=est_b.total_seconds,
            boundary_actual=actual_b,
            boundary_err=abs(est_b.total_seconds - actual_b) / actual_b,
            johnson_est=est_j.total_seconds,
            johnson_actual=actual_j,
            johnson_err=abs(est_j.total_seconds - actual_j) / actual_j,
            predicted_best="boundary" if est_b.total_seconds < est_j.total_seconds else "johnson",
            actual_best="boundary" if actual_b < actual_j else "johnson",
        )
    correct = sum(r["predicted_best"] == r["actual_best"] for r in record.rows)
    record.note(f"selection correct on {correct}/{len(record.rows)} graphs")
    return record


def check_record(record: ExperimentRecord) -> None:
    # prediction error small for both models
    assert max(r["boundary_err"] for r in record.rows) < 0.5
    assert max(r["johnson_err"] for r in record.rows) < 0.5
    # boundary wins everywhere, and the model knows it
    assert all(r["actual_best"] == "boundary" for r in record.rows)
    assert all(r["predicted_best"] == r["actual_best"] for r in record.rows)


def test_fig6_cost_model_v100(benchmark):
    spec = device_profile("ratio")
    record = benchmark.pedantic(
        run_cost_model_experiment, args=(spec, "fig6", "V100"), rounds=1, iterations=1
    )
    record.print()
    record.save()
    check_record(record)


if __name__ == "__main__":
    run_cost_model_experiment(device_profile("ratio"), "fig6", "V100").print()
