"""Microbenchmarks — wall-clock throughput of the numeric hot paths.

Unlike the experiment benchmarks (which report *simulated* seconds), these
measure the real numpy kernels with pytest-benchmark's statistics, guarding
against performance regressions in the primitives everything else is built
on: the min-plus product, the FW inner loop, the vectorised scatter-min,
frontier expansion, and the partitioner.

Profiled choices these enshrine (see repro/core/minplus.py):
rank-1 min-plus updates beat the 3-D broadcast ~4×, and float32 beats
float64 ~2.5× while staying exact for integer weights.
"""

import numpy as np
import pytest

from repro.core.blocked_fw import floyd_warshall_inplace
from repro.core.minplus import minplus_update
from repro.graphs.generators import planar_like, rmat
from repro.partition import partition_kway
from repro.sssp.frontier import expand_frontier, scatter_min
from repro.sssp.near_far import near_far_batch


@pytest.fixture(scope="module")
def tiles():
    rng = np.random.default_rng(0)
    a = rng.integers(1, 100, (256, 256)).astype(np.float32)
    b = rng.integers(1, 100, (256, 256)).astype(np.float32)
    return a, b


def test_minplus_throughput(benchmark, tiles):
    a, b = tiles
    c = np.full((256, 256), np.inf, dtype=np.float32)

    def run():
        c[...] = np.inf
        minplus_update(c, a, b)

    benchmark(run)
    ops = 2 * 256**3
    benchmark.extra_info["gop_per_s"] = ops / benchmark.stats["mean"] / 1e9
    # regression guard: the rank-1 formulation should exceed 0.5 Gop/s
    assert ops / benchmark.stats["mean"] > 0.5e9


def test_fw_tile_throughput(benchmark, tiles):
    a, _ = tiles

    def run():
        floyd_warshall_inplace(a.copy())

    benchmark(run)
    ops = 2 * 256**3
    assert ops / benchmark.stats["mean"] > 0.3e9


def test_scatter_min_throughput(benchmark):
    rng = np.random.default_rng(1)
    target = rng.random(100_000)
    idx = rng.integers(0, 100_000, size=500_000)
    vals = rng.random(500_000)

    def run():
        scatter_min(target.copy(), idx, vals)

    benchmark(run)
    rate = 500_000 / benchmark.stats["mean"]
    benchmark.extra_info["updates_per_s"] = rate
    assert rate > 2e6  # reduceat path, not ufunc.at


def test_frontier_expansion_throughput(benchmark):
    g = rmat(20_000, 320_000, seed=2)
    frontier = np.arange(0, 20_000, 2)

    def run():
        expand_frontier(g, frontier)

    benchmark(run)


def test_near_far_batch_throughput(benchmark):
    g = planar_like(1000, seed=3)
    sources = np.arange(32)

    def run():
        near_far_batch(g, sources)

    benchmark(run)
    _, stats = near_far_batch(g, sources)
    rate = stats.relaxations / benchmark.stats["mean"]
    benchmark.extra_info["relax_per_s"] = rate
    assert rate > 1e5


def test_partitioner_throughput(benchmark):
    g = planar_like(2000, seed=4)

    def run():
        partition_kway(g, 16, seed=0)

    benchmark(run)
    assert benchmark.stats["mean"] < 5.0  # seconds, generous regression bound
