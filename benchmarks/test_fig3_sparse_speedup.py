"""Figure 3 — out-of-core Johnson's algorithm vs BGL-plus, other sparse graphs.

Paper: for the 8 Table III graphs *without* a small separator (FEM/structural
matrices), the out-of-core implementation (Johnson's algorithm) beats
BGL-plus by **2.23–2.79×**. The speedups are lower than Fig 2's because
larger edge counts shrink the batch size and with it the exposed
parallelism.
"""

from repro.baselines import bgl_plus_apsp
from repro.bench import ExperimentRecord, cpu_profile, device_profile
from repro.core import ooc_johnson
from repro.gpu.device import Device
from repro.graphs.suite import list_suite

PAPER_BAND = (2.23, 2.79)
#: FEM stand-ins run at 1/128 to bound numpy wall time (documented in
#: EXPERIMENTS.md; the scaled-device rules make ratios scale-invariant)
SCALE = 1.0 / 128.0


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio", scale=SCALE)
    cpu = cpu_profile(scale=SCALE)
    record = ExperimentRecord(
        experiment="fig3",
        title="Johnson's algorithm vs BGL-plus (other sparse graphs, V100)",
        paper_expectation=f"speedups {PAPER_BAND[0]}x-{PAPER_BAND[1]}x",
    )
    for entry in list_suite(tier="cpu-fit", small_separator=False):
        graph = entry.generate(SCALE)
        device = Device(spec)
        res = ooc_johnson(graph, device)
        bgl = bgl_plus_apsp(graph, cpu, seed=1)
        record.add(
            graph=entry.name,
            n=graph.num_vertices,
            m=graph.num_edges,
            bat=res.stats["batch_size"],
            johnson_s=res.simulated_seconds,
            bgl_plus_s=bgl.simulated_seconds,
            speedup=bgl.simulated_seconds / res.simulated_seconds,
        )
    speedups = [r["speedup"] for r in record.rows]
    record.note(
        f"measured speedup range {min(speedups):.2f}x-{max(speedups):.2f}x "
        f"(paper {PAPER_BAND[0]}-{PAPER_BAND[1]}x)"
    )
    return record


def test_fig3_sparse_speedup(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    speedups = [r["speedup"] for r in record.rows]
    # the FEM band sits well below the small-separator band and above 1
    assert min(speedups) > 1.3
    assert max(speedups) < 5.0
    benchmark.extra_info["speedup_min"] = min(speedups)
    benchmark.extra_info["speedup_max"] = max(speedups)


if __name__ == "__main__":
    run_experiment().print()
