"""Table IV — features of the graphs whose output exceeds CPU memory.

Paper columns: n, m, density for the 10 large matrices. At full size their
n² outputs (4 bytes/entry) exceed the 128 GB host; the scaled stand-ins
carry the same density bands and families.
"""

from repro.bench import ExperimentRecord
from repro.graphs.suite import DEFAULT_SCALE, list_suite


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="table4",
        title="Evaluation graphs, output exceeds CPU memory (scaled stand-ins)",
        paper_expectation="10 graphs; paper-size outputs all exceed 128 GB",
    )
    for entry in list_suite(tier="cpu-exceed"):
        graph = entry.generate(DEFAULT_SCALE)
        paper_output_gb = entry.paper_n**2 * 4 / 2**30
        record.add(
            graph=entry.name,
            family=entry.family,
            n=graph.num_vertices,
            m=graph.num_edges,
            density_pct=100 * entry.effective_density(graph, DEFAULT_SCALE),
            paper_density_pct=entry.paper_density_pct,
            paper_output_gb=paper_output_gb,
        )
    return record


def test_table4_large_graphs(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    assert len(record.rows) == 10
    # at paper size, every output is bigger than the 128 GB host memory
    assert all(r["paper_output_gb"] > 128 for r in record.rows)
    for r in record.rows:
        assert r["density_pct"] < r["paper_density_pct"] * 3.0
        assert r["density_pct"] > r["paper_density_pct"] / 3.0


if __name__ == "__main__":
    run_experiment().print()
