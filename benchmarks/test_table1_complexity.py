"""Table I — measured complexity characteristics of the three algorithms.

Paper Table I states the asymptotics; this benchmark verifies them on the
implementations by fitting log–log slopes over size sweeps:

* blocked FW computation ~ O(n³), data movement ~ O(n_d·n²);
* Johnson computation ~ O(n·m) (work-efficient relaxations), movement O(n²);
* boundary movement ~ O(n²), computation between O(n²) and O(n³).
"""

import numpy as np

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_boundary, ooc_floyd_warshall, ooc_johnson
from repro.gpu.device import Device
from repro.graphs.generators import erdos_renyi, planar_like


def _slope(xs, ys) -> float:
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    record = ExperimentRecord(
        experiment="table1",
        title="Measured scaling exponents vs Table I complexities",
        paper_expectation=(
            "FW compute n^3, movement n_d*n^2; Johnson compute ~n*m, "
            "movement n^2; boundary movement n^2"
        ),
    )
    sizes = [300, 600, 1200]
    fw_compute, fw_bytes = [], []
    jo_compute, jo_bytes = [], []
    bd_bytes = []
    for n in sizes:
        g = erdos_renyi(n, 8 * n, seed=n)
        res = ooc_floyd_warshall(g, Device(spec))
        fw_compute.append(res.stats["compute_seconds"])
        fw_bytes.append(res.stats["bytes_h2d"] + res.stats["bytes_d2h"])
        res = ooc_johnson(g, Device(spec))
        jo_compute.append(res.stats["compute_seconds"])
        jo_bytes.append(res.stats["bytes_h2d"] + res.stats["bytes_d2h"])
        p = planar_like(n, seed=n)
        res = ooc_boundary(p, Device(spec), seed=0)
        bd_bytes.append(res.stats["bytes_d2h"])

    record.add(algorithm="floyd-warshall", quantity="compute",
               exponent=_slope(sizes, fw_compute), expected=3.0)
    # movement is O(n_d·n²); at fixed device memory n_d itself grows ~n, so
    # the measured exponent sits between 2 (n_d saturated) and 3
    record.add(algorithm="floyd-warshall", quantity="movement (n_d·n²)",
               exponent=_slope(sizes, fw_bytes), expected=2.5)
    record.add(algorithm="johnson", quantity="compute (m ∝ n here, so n·m ~ n²)",
               exponent=_slope(sizes, jo_compute), expected=2.0)
    record.add(algorithm="johnson", quantity="movement",
               exponent=_slope(sizes, jo_bytes), expected=2.0)
    record.add(algorithm="boundary", quantity="movement (d2h)",
               exponent=_slope(sizes, bd_bytes), expected=2.0)
    return record


def test_table1_complexity(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    for row in record.rows:
        assert abs(row["exponent"] - row["expected"]) < 0.6, row


if __name__ == "__main__":
    run_experiment().print()
