"""Extension — in-core vs out-of-core crossover at the memory boundary.

The paper's motivation: in-core GPU APSP [16], [20] "only considered small
graphs". This experiment sweeps n across the device-memory boundary and
shows (a) in-core FW is the fastest choice while the matrix fits (no
per-iteration streaming), (b) it hard-fails beyond the boundary where the
out-of-core driver keeps going with a modest streaming overhead.
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_floyd_warshall
from repro.core.incore import fits_in_core, incore_apsp
from repro.gpu.device import Device
from repro.gpu.errors import OutOfMemoryError
from repro.graphs.generators import erdos_renyi


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    record = ExperimentRecord(
        experiment="ext_incore",
        title="In-core vs out-of-core blocked FW across the memory boundary",
        paper_expectation=(
            "in-core wins while n² fits on the device and cannot run beyond; "
            "out-of-core continues with bounded streaming overhead"
        ),
    )
    # spec memory fits a dist matrix up to n ≈ sqrt(mem/4)
    import math

    boundary = int(math.sqrt(spec.memory_bytes / 4))
    for n in (boundary // 4, boundary // 2, int(boundary * 0.9), int(boundary * 1.5), boundary * 3):
        graph = erdos_renyi(n, 8 * n, seed=n)
        fits = fits_in_core(n, spec)
        try:
            t_in = incore_apsp(graph, Device(spec)).simulated_seconds
        except OutOfMemoryError:
            t_in = None
        t_ooc = ooc_floyd_warshall(graph, Device(spec)).simulated_seconds
        record.add(
            n=n,
            fits_in_core=fits,
            incore_s=t_in if t_in is not None else float("nan"),
            ooc_s=t_ooc,
            ooc_overhead=(t_ooc / t_in) if t_in else float("nan"),
        )
    return record


def test_ext_incore_crossover(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    import math

    for r in record.rows:
        if r["fits_in_core"]:
            # in-core ran and the OOC version pays only streaming overhead
            assert not math.isnan(r["incore_s"])
            assert r["incore_s"] <= r["ooc_s"]
            assert r["ooc_overhead"] < 3.0
        else:
            # beyond the boundary only the out-of-core driver survives
            assert math.isnan(r["incore_s"])
            assert r["ooc_s"] > 0


if __name__ == "__main__":
    run_experiment().print()
