"""Table III — features of the graphs whose output fits in CPU memory.

Paper columns: n, m, √(kn), #boundary nodes after METIS k-way partitioning
(k = √n), separator class, and density. Our stand-ins must land in the
same separator class and density band as the paper graph they stand in for.
"""

from repro.bench import ExperimentRecord
from repro.graphs.suite import DEFAULT_SCALE, list_suite
from repro.partition import classify_separator


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="table3",
        title="Evaluation graphs, output fits CPU memory (scaled stand-ins)",
        paper_expectation=(
            "11 of 19 graphs classify as small-separator; stand-in density "
            "(paper-equivalent) tracks the reported column"
        ),
    )
    for entry in list_suite(tier="cpu-fit"):
        graph = entry.generate(DEFAULT_SCALE)
        info = classify_separator(graph, seed=0)
        record.add(
            graph=entry.name,
            family=entry.family,
            n=graph.num_vertices,
            m=graph.num_edges,
            sqrt_kn=round(info.ideal_boundary),
            boundary=info.num_boundary,
            nb_ratio=info.ratio,
            small_sep=info.small_separator,
            paper_small_sep=entry.small_separator,
            density_pct=100 * entry.effective_density(graph, DEFAULT_SCALE),
            paper_density_pct=entry.paper_density_pct,
        )
    return record


def test_table3_graph_features(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    match = [r for r in record.rows if r["small_sep"] == r["paper_small_sep"]]
    # onera_dual's 3-D separator ratio shrinks with scale (EXPERIMENTS.md);
    # every other stand-in must classify exactly as the paper does
    assert len(match) >= len(record.rows) - 1
    # paper-equivalent density within a factor ~2.5 of the reported column
    for r in record.rows:
        assert r["density_pct"] < r["paper_density_pct"] * 2.5
        assert r["density_pct"] > r["paper_density_pct"] / 2.5


if __name__ == "__main__":
    run_experiment().print()
