"""Ablation — dynamic parallelism in the out-of-core Johnson (paper §III-B).

Paper: when the batch size falls below the device's active-block capacity,
the MSSP kernel under-utilises the GPU; launching child kernels for
high-out-degree vertices restores throughput. The effect should be:

* **large on big FEM graphs** (bat « occupancy saturation, high degrees),
* **absent on road networks** (full occupancy and no heavy vertices).
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_johnson
from repro.gpu.device import Device
from repro.graphs.suite import get_suite_graph

SCALE = 1.0 / 128.0
GRAPHS = ["pkustk14", "gearbox", "net4-1", "usroads"]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio", scale=SCALE)
    record = ExperimentRecord(
        experiment="ablation_dp",
        title="Out-of-core Johnson with/without dynamic parallelism",
        paper_expectation=(
            "DP recovers the occupancy loss on big FEM graphs (small bat, "
            "high degrees); no effect where occupancy is already saturated"
        ),
    )
    for name in GRAPHS:
        graph = get_suite_graph(name, SCALE)
        with_dp = ooc_johnson(graph, Device(spec), dynamic_parallelism=True)
        without = ooc_johnson(graph, Device(spec), dynamic_parallelism=False)
        record.add(
            graph=name,
            bat=with_dp.stats["batch_size"],
            heavy_frac=with_dp.stats["heavy_relaxations"]
            / max(1, with_dp.stats["relaxations"]),
            with_dp_s=with_dp.simulated_seconds,
            without_dp_s=without.simulated_seconds,
            dp_speedup=without.simulated_seconds / with_dp.simulated_seconds,
        )
    return record


def test_ablation_dynamic_parallelism(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    rows = {r["graph"]: r for r in record.rows}
    # the big FEM graph with tiny batches gains a lot
    assert rows["pkustk14"]["dp_speedup"] > 1.5
    assert rows["gearbox"]["dp_speedup"] > 1.3
    # the road network gains nothing (no heavy vertices, full occupancy)
    assert rows["usroads"]["dp_speedup"] < 1.05
    assert rows["usroads"]["heavy_frac"] == 0.0


if __name__ == "__main__":
    run_experiment().print()
