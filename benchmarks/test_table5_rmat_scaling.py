"""Table V — R-MAT scaling study on V100 and K80.

Paper: R-MAT graphs from 5,000 to 320,000 vertices (output ranging from
GPU-resident to beyond CPU memory); the optimal implementation is always
Johnson's, and the computational efficiency ``n·m/s`` stays roughly stable
as size grows — data movement does not come to dominate.
"""

from repro.bench import ExperimentRecord, device_profile
from repro.core import ooc_johnson
from repro.gpu.device import K80, Device
from repro.graphs.generators import rmat
from repro.graphs.suite import DEFAULT_SCALE

#: paper sizes 5k…320k, scaled by 1/64 (edge factor 16, as in R-MAT suites)
PAPER_SIZES = [5_000, 10_000, 20_000, 40_000, 80_000, 160_000, 320_000]
EDGE_FACTOR = 16


def run_experiment() -> ExperimentRecord:
    record = ExperimentRecord(
        experiment="table5",
        title="R-MAT scaling: Johnson's algorithm on V100 and K80",
        paper_expectation=(
            "n·m/s stays roughly stable as graphs grow (data movement does "
            "not dominate); K80 ~5x slower than V100"
        ),
    )
    for dev_name, base in (("V100", None), ("K80", K80)):
        if base is None:
            spec = device_profile("ratio", scale=DEFAULT_SCALE)
        else:
            spec = device_profile("ratio", base=base, scale=DEFAULT_SCALE)
        for paper_n in PAPER_SIZES:
            n = max(128, int(paper_n * DEFAULT_SCALE))
            m = n * EDGE_FACTOR
            graph = rmat(n, m, seed=paper_n, name=f"rmat-{paper_n}")
            res = ooc_johnson(graph, Device(spec))
            t = res.simulated_seconds
            record.add(
                device=dev_name,
                paper_n=paper_n,
                n=graph.num_vertices,
                m=graph.num_edges,
                johnson_s=t,
                nm_per_s=graph.num_vertices * graph.num_edges / t,
                transfer_s=res.stats["transfer_seconds"],
                transfer_frac=res.stats["transfer_seconds"] / t,
            )
    return record


def test_table5_rmat_scaling(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    for dev in ("V100", "K80"):
        rows = [r for r in record.rows if r["device"] == dev]
        effs = [r["nm_per_s"] for r in rows]
        # efficiency stable within a small factor across a 64x size sweep
        assert max(effs) / min(effs) < 4.0, dev
        # transfers never dominate
        assert all(r["transfer_frac"] < 0.5 for r in rows), dev
    v100 = {r["paper_n"]: r["johnson_s"] for r in record.rows if r["device"] == "V100"}
    k80 = {r["paper_n"]: r["johnson_s"] for r in record.rows if r["device"] == "K80"}
    ratios = [k80[n] / v100[n] for n in v100]
    # K80 slower by roughly the rate ratio (paper shows ~4-6x)
    assert 2.0 < sum(ratios) / len(ratios) < 10.0
    benchmark.extra_info["k80_over_v100"] = sum(ratios) / len(ratios)


if __name__ == "__main__":
    run_experiment().print()
