"""Ablation — host-memory pinning and Near-Far Δ sensitivity.

Two secondary design choices the implementation relies on:

* **pinned staging buffers** — the paper's transfers use page-locked host
  memory; pageable memory derates PCIe throughput (~0.55× in our model,
  matching typical measurements), which should hurt the transfer-bound
  boundary algorithm the most;
* **Δ in Near-Far** — the split granularity trades work-efficiency
  (too-large Δ degenerates toward Bellman-Ford re-relaxation) against
  iteration overhead (too-small Δ adds near-empty bucket rounds); the
  default heuristic (mean weight scaled by degree) should sit near the
  flat bottom of the curve.
"""

import numpy as np

from repro.bench import ExperimentRecord, device_profile
from repro.gpu.device import Device
from repro.gpu.transfer import copy_duration
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph
from repro.sssp.frontier import suggest_delta
from repro.sssp.near_far import near_far_batch


def run_experiment() -> ExperimentRecord:
    spec = device_profile("transfer")
    record = ExperimentRecord(
        experiment="ablation_transfer_modes",
        title="Pinned vs pageable staging; Near-Far delta sensitivity",
        paper_expectation=(
            "pinned transfers ~1.8x faster per byte; Near-Far work is flat "
            "near the default delta and degrades at the extremes"
        ),
    )
    # --- pinning ----------------------------------------------------------
    for mb in (1, 16):
        nbytes = mb * 2**20
        pinned = copy_duration(spec, nbytes, pinned=True)
        pageable = copy_duration(spec, nbytes, pinned=False)
        record.add(
            quantity=f"copy {mb} MiB",
            pinned_s=pinned,
            pageable_s=pageable,
            penalty=pageable / pinned,
        )
    # --- delta sweep --------------------------------------------------------
    graph = get_suite_graph("usroads", DEFAULT_SCALE)
    default = suggest_delta(graph)
    sources = np.arange(0, graph.num_vertices, graph.num_vertices // 8)
    for factor in (0.25, 0.5, 1.0, 4.0, 16.0, 1e6):
        _, stats = near_far_batch(graph, sources, delta=default * factor)
        record.add(
            quantity=f"delta x{factor:g}",
            relaxations=stats.relaxations,
            iterations=stats.iterations,
            work_per_edge=stats.relaxations / (len(sources) * graph.num_edges),
        )
    return record


def test_ablation_transfer_modes(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    copies = [r for r in record.rows if "copy" in r["quantity"]]
    assert all(1.5 < r["penalty"] < 2.5 for r in copies)
    deltas = {r["quantity"]: r for r in record.rows if "delta" in r["quantity"]}
    base = deltas["delta x1"]["work_per_edge"]
    # huge delta (Bellman-Ford limit) re-relaxes more than the default
    assert deltas["delta x1e+06"]["work_per_edge"] >= base
    # tiny delta costs far more bucket iterations
    assert deltas["delta x0.25"]["iterations"] > deltas["delta x1"]["iterations"]
    # the default sits within 20% of the best work-efficiency in the sweep
    best = min(r["work_per_edge"] for r in deltas.values())
    assert base <= best * 1.2


if __name__ == "__main__":
    run_experiment().print()
