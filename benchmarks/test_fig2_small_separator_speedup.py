"""Figure 2 — out-of-core boundary algorithm vs BGL-plus, small separators.

Paper: for the 11 Table III graphs with a small separator, the out-of-core
implementation (the selector picks the boundary algorithm) beats the
multicore BGL-plus baseline by **8.22–12.40×** on the V100.
"""

from repro.baselines import bgl_plus_apsp
from repro.bench import ExperimentRecord, cpu_profile, device_profile
from repro.core import ooc_boundary
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, list_suite

PAPER_BAND = (8.22, 12.40)


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    cpu = cpu_profile()
    record = ExperimentRecord(
        experiment="fig2",
        title="Boundary algorithm vs BGL-plus (small-separator graphs, V100)",
        paper_expectation=f"speedups {PAPER_BAND[0]}x-{PAPER_BAND[1]}x",
    )
    for entry in list_suite(tier="cpu-fit", small_separator=True):
        graph = entry.generate(DEFAULT_SCALE)
        device = Device(spec)
        res = ooc_boundary(graph, device, seed=0)
        bgl = bgl_plus_apsp(graph, cpu, seed=1)
        record.add(
            graph=entry.name,
            n=graph.num_vertices,
            m=graph.num_edges,
            boundary_s=res.simulated_seconds,
            bgl_plus_s=bgl.simulated_seconds,
            speedup=bgl.simulated_seconds / res.simulated_seconds,
            k=res.stats["num_components"],
            num_boundary=res.stats["num_boundary"],
        )
    speedups = [r["speedup"] for r in record.rows]
    record.note(
        f"measured speedup range {min(speedups):.2f}x-{max(speedups):.2f}x "
        f"(paper {PAPER_BAND[0]}-{PAPER_BAND[1]}x); redistricting stand-ins "
        "run slightly high — see EXPERIMENTS.md"
    )
    return record


def test_fig2_small_separator_speedup(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    speedups = [r["speedup"] for r in record.rows]
    # every small-separator graph must show a large GPU win, same order of
    # magnitude as the paper's band
    assert min(speedups) > 5.0
    assert max(speedups) < 25.0
    # and the boundary algorithm must always beat BGL-plus
    assert all(r["speedup"] > 1 for r in record.rows)
    benchmark.extra_info["speedup_min"] = min(speedups)
    benchmark.extra_info["speedup_max"] = max(speedups)


if __name__ == "__main__":
    run_experiment().print()
