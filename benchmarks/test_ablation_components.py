"""Ablation — boundary-algorithm component count k (paper §V-F).

Paper: "We set the number of components to be √n/4 since we found it
achieves the best performance in most cases." This sweep measures the
boundary algorithm across k ∈ {√n/8, √n/4, √n/2, √n, 2√n} on a
small-separator graph and checks the optimum's location.

The trade-off: larger k shrinks the per-component FW work (n³/k²) but
grows the boundary set (NB ~ 2√(kn)), inflating the boundary-graph closure
(NB³) and the dist4 products (n²·NB/k).
"""

import numpy as np

from repro.bench import ExperimentRecord, device_profile
from repro.core import BoundaryInfeasibleError, ooc_boundary
from repro.gpu.device import Device
from repro.graphs.suite import DEFAULT_SCALE, get_suite_graph

FACTORS = [1 / 8, 1 / 4, 1 / 2, 1.0, 2.0]


def run_experiment() -> ExperimentRecord:
    spec = device_profile("ratio")
    record = ExperimentRecord(
        experiment="ablation_components",
        title="Boundary algorithm vs component count (k as a multiple of √n)",
        paper_expectation="k = √n/4 performs best in most cases (§V-F)",
    )
    for name in ("usroads", "wi2010", "nd2010"):
        graph = get_suite_graph(name, DEFAULT_SCALE)
        root_n = np.sqrt(graph.num_vertices)
        for factor in FACTORS:
            k = max(2, int(round(root_n * factor)))
            try:
                res = ooc_boundary(graph, Device(spec), num_components=k, seed=0)
            except BoundaryInfeasibleError:
                record.add(graph=name, k_factor=f"sqrt(n)*{factor:g}", k=k,
                           seconds=float("nan"), feasible=False)
                continue
            record.add(
                graph=name,
                k_factor=f"sqrt(n)*{factor:g}",
                k=res.stats["num_components"],
                num_boundary=res.stats["num_boundary"],
                seconds=res.simulated_seconds,
                feasible=True,
            )
    return record


def test_ablation_components(benchmark):
    record = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record.print()
    record.save()
    for name in ("usroads", "wi2010", "nd2010"):
        rows = [r for r in record.rows if r["graph"] == name and r["feasible"]]
        best = min(rows, key=lambda r: r["seconds"])
        # the optimum sits in the paper's small-k region, never at 2√n
        assert best["k_factor"] != "sqrt(n)*2", name
        # and √n/4 is within 40% of the best (the paper's "most cases")
        quarter = next(r for r in rows if r["k_factor"] == "sqrt(n)*0.25")
        assert quarter["seconds"] <= best["seconds"] * 1.4, name


if __name__ == "__main__":
    run_experiment().print()
