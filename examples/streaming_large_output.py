#!/usr/bin/env python
"""Streaming an output that exceeds host memory (paper Table IV regime).

The paper's largest graphs produce distance matrices beyond even the 128 GB
host, so the out-of-core driver streams the output to storage. This example
runs Johnson's algorithm with a disk-backed host store (numpy memmap),
shows the batch pipeline at work, and queries the spilled matrix without
loading it.

Run:  python examples/streaming_large_output.py
"""

import numpy as np

from repro.core import ooc_johnson, plan_batch_size
from repro.gpu import Device, V100
from repro.graphs.generators import rmat
from repro.sssp import dijkstra

SCALE = 1 / 64
spec = V100.scaled(SCALE)

# a scale-free graph in the Table IV size class (scaled)
graph = rmat(2500, 37_500, seed=11, name="web-2.5k")
print(f"graph: {graph}")
out_bytes = graph.num_vertices**2 * 4
print(f"output: {out_bytes / 2**20:.0f} MiB "
      f"(device memory is only {spec.memory_bytes / 2**20:.0f} MiB)")

bat = plan_batch_size(graph, spec)
print(f"planned batch size bat = (L - S)/(c·m) -> {bat} "
      f"({(graph.num_vertices + bat - 1) // bat} batches)")

device = Device(spec)
result = ooc_johnson(graph, device, store_mode="disk")
print(f"\nsolved in {result.simulated_seconds:.3f} simulated seconds "
      f"({result.stats['num_batches']} MSSP kernels, "
      f"dynamic parallelism covered "
      f"{result.stats['heavy_relaxations'] / max(1, result.stats['relaxations']):.0%} "
      "of relaxations)")
print(f"distance matrix spilled to: {result.store.path}")
print(f"file size: {result.store.path.stat().st_size / 2**20:.0f} MiB")

# Query the memmapped output without materialising it.
row = result.row(123)
print(f"\nfarthest vertex from 123: {int(np.argmax(np.where(np.isfinite(row), row, -1)))}")
expected, _ = dijkstra(graph, 123)
assert np.allclose(row, expected)
print("row 123 verified against Dijkstra ✓")

result.store.close()
print("backing file cleaned up")
