#!/usr/bin/env python
"""Currency conversion and arbitrage via negative-weight APSP.

The classic application of Johnson-reweighted shortest paths: model an
exchange market as a graph with edge weight ``−log(rate)``. Then

* the shortest distance u→v is the negative log of the *best achievable
  conversion rate* through any chain of trades, and
* a **negative cycle** is an arbitrage loop (multiply rates around the
  cycle and you end up with more than you started).

This exercises the library's negative-weight extension end to end:
Bellman–Ford potentials, reweighted out-of-core Johnson, restoration, and
negative-cycle detection.

Run:  python examples/currency_arbitrage.py
"""

import numpy as np

from repro.core import reconstruct_path, solve_apsp_negative
from repro.gpu.device import TEST_DEVICE
from repro.sssp.reweight import NegativeCycleError, johnson_potentials

CURRENCIES = ["USD", "EUR", "GBP", "JPY", "CHF", "AUD", "CAD", "NZD"]

# A consistent market (rates derived from per-currency values + spreads):
# no arbitrage, but multi-hop routes still beat direct quotes with wide
# spreads.
rng = np.random.default_rng(7)
value = {c: v for c, v in zip(CURRENCIES, [1.0, 1.08, 1.27, 0.0067, 1.12, 0.66, 0.74, 0.61])}

pairs = []
for i, a in enumerate(CURRENCIES):
    for b in CURRENCIES[i + 1 :]:
        spread = rng.uniform(0.001, 0.04)  # some quotes are terrible
        pairs.append((a, b, (value[a] / value[b]) * (1 - spread)))
        pairs.append((b, a, (value[b] / value[a]) * (1 - spread)))

idx = {c: i for i, c in enumerate(CURRENCIES)}
src = np.array([idx[a] for a, _, _ in pairs])
dst = np.array([idx[b] for _, b, _ in pairs])
rates = np.array([r for _, _, r in pairs])
weights = -np.log(rates)
assert (weights < 0).any()  # rates > 1 give genuinely negative edges

result = solve_apsp_negative(
    len(CURRENCIES), src, dst, weights, algorithm="johnson", device=TEST_DEVICE,
    name="fx-market",
)
print("consistent market: no arbitrage, best conversion rates:\n")
print("        " + "".join(f"{c:>10}" for c in CURRENCIES))
for a in CURRENCIES:
    row = [np.exp(-result.distance(idx[a], idx[b])) if a != b else 1.0 for b in CURRENCIES]
    print(f"{a:>6}  " + "".join(f"{r:10.4f}" for r in row))

# A route that beats the direct (wide-spread) quote:
graph_rates = {(a, b): r for a, b, r in pairs}
best_gain, best_pair = 0.0, None
for a, b, direct in pairs:
    via = np.exp(-result.distance(idx[a], idx[b]))
    if via / direct > best_gain:
        best_gain, best_pair = via / direct, (a, b, direct, via)
a, b, direct, via = best_pair
print(f"\nbest multi-hop win: {a}->{b} direct {direct:.4f}, routed {via:.4f} "
      f"({(best_gain - 1):.2%} better)")

# --- now inject a mispriced quote and detect the arbitrage ---------------
bad = np.concatenate([weights, [-np.log(1.3 * value['GBP'] / value['USD'])]])
src2 = np.concatenate([src, [idx["GBP"]]])
dst2 = np.concatenate([dst, [idx["USD"]]])
try:
    johnson_potentials(len(CURRENCIES), src2, dst2, bad)
    print("\nno arbitrage detected (unexpected!)")
except NegativeCycleError:
    print("\nmispriced GBP->USD quote injected -> NegativeCycleError: "
          "arbitrage loop detected, as it should be")
