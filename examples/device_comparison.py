#!/usr/bin/env python
"""Compare V100 and K80 across the three out-of-core implementations.

Reproduces the paper's generality argument (Figs 6 vs 7, Table V): the same
code and the same cost models hold on both devices; only the device
constants change (memory, PCIe throughput, kernel rates).

Run:  python examples/device_comparison.py
"""

from repro.core import ooc_boundary, ooc_floyd_warshall, ooc_johnson
from repro.gpu import Device, K80, V100
from repro.graphs.generators import planar_like, rmat

SCALE = 1 / 64
GRAPHS = {
    "planar-1600": planar_like(1600, seed=3),
    "rmat-1200": rmat(1200, 19_000, seed=4),
}

print(f"{'graph':<14} {'algorithm':<16} {'V100':>12} {'K80':>12} {'K80/V100':>9}")
print("-" * 67)
for gname, graph in GRAPHS.items():
    for alg_name, runner in (
        ("floyd-warshall", ooc_floyd_warshall),
        ("johnson", ooc_johnson),
        ("boundary", ooc_boundary),
    ):
        times = {}
        for dev_name, base in (("V100", V100), ("K80", K80)):
            try:
                res = runner(graph, Device(base.scaled(SCALE)))
            except Exception as exc:  # boundary may be infeasible on rmat
                times[dev_name] = None
                reason = type(exc).__name__
                continue
            times[dev_name] = res.simulated_seconds
        if times["V100"] is None or times["K80"] is None:
            print(f"{gname:<14} {alg_name:<16} {'infeasible (' + reason + ')':>25}")
            continue
        print(
            f"{gname:<14} {alg_name:<16} "
            f"{times['V100'] * 1e3:>10.2f}ms {times['K80'] * 1e3:>10.2f}ms "
            f"{times['K80'] / times['V100']:>8.2f}x"
        )

print(
    "\nThe K80 runs every algorithm a few times slower than the V100 — the "
    "ratio tracks the kernel-rate and PCIe gaps in Table II, matching the "
    "paper's Fig 6 vs Fig 7 relationship."
)
