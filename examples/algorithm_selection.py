#!/usr/bin/env python
"""The paper's selection methodology across graph families.

Runs the Section-IV selector (density filter + cost models) on one graph
from each family — road network, redistricting mesh, 3-D FEM mesh,
scale-free web graph, and a dense synthetic — then validates each pick by
measuring every feasible implementation.

Run:  python examples/algorithm_selection.py
"""

from repro.core import (
    BoundaryInfeasibleError,
    ooc_boundary,
    ooc_floyd_warshall,
    ooc_johnson,
)
from repro.gpu import Device, V100
from repro.graphs.generators import planar_like, random_geometric, rmat, road_like
from repro.select import Calibration, Selector

SCALE = 1 / 64
SPEC = V100.scaled(SCALE)

GRAPHS = {
    "road network": road_like(1400, 2.6, seed=1),
    "redistricting mesh": planar_like(1400, diagonal_fraction=0.5, seed=2),
    "3-D FEM mesh": random_geometric(1200, 0.12, dim=3, seed=3),
    "web graph": rmat(1400, 12_000, seed=4),
}

RUNNERS = {
    "johnson": lambda g: ooc_johnson(g, Device(SPEC)).simulated_seconds,
    "boundary": lambda g: ooc_boundary(g, Device(SPEC), seed=0).simulated_seconds,
    "floyd-warshall": lambda g: ooc_floyd_warshall(g, Device(SPEC)).simulated_seconds,
}

print("calibrating cost models (one-time per device)...")
selector = Selector(SPEC, Calibration(SPEC), density_scale=SCALE, seed=0)

for label, graph in GRAPHS.items():
    report = selector.select(graph, device=Device(SPEC))
    print(f"\n=== {label}: {graph}")
    print(f"  density {report.density:.4%} -> band {report.band!r}, "
          f"candidates {report.candidates}")
    for name, est in report.estimates.items():
        print(f"  model {name}: {est.total_seconds * 1e3:8.2f} ms "
              f"(compute {est.compute_seconds * 1e3:.2f} + "
              f"transfer {est.transfer_seconds * 1e3:.2f})")
    if report.infeasible:
        print(f"  infeasible: {report.infeasible}")
    print(f"  selected: {report.algorithm}")

    # validate against measurements
    measured = {}
    for cand in report.candidates:
        if cand in report.infeasible:
            continue
        try:
            measured[cand] = RUNNERS[cand](graph)
        except BoundaryInfeasibleError:
            continue
    if len(measured) > 1:
        best = min(measured, key=measured.get)
        times = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in measured.items())
        verdict = "correct ✓" if best == report.algorithm else f"measured best was {best} ✗"
        print(f"  measured: {times} -> {verdict}")

# --- the dense band -------------------------------------------------------
# Densities above 1% are rare in real graphs (the paper evaluates this band
# on synthetic R-MAT, Table VI). A scaled stand-in cannot reach it, so this
# graph is interpreted at full size (density_scale=1).
dense = rmat(900, 180_000, seed=5, name="dense-synthetic")
dense_selector = Selector(SPEC, selector.calibration, density_scale=1.0, seed=0)
report = dense_selector.select(dense, device=Device(SPEC))
print(f"\n=== dense synthetic (full-size interpretation): {dense}")
print(f"  density {report.density:.4%} -> band {report.band!r}, "
      f"candidates {report.candidates}")
for name, est in report.estimates.items():
    print(f"  model {name}: {est.total_seconds * 1e3:8.2f} ms")
print(f"  selected: {report.algorithm}")
measured = {c: RUNNERS[c](dense) for c in report.candidates}
best = min(measured, key=measured.get)
print("  measured: " + ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in measured.items())
      + (" -> correct ✓" if best == report.algorithm else f" -> measured best {best} ✗"))
