#!/usr/bin/env python
"""Quickstart: solve all-pairs shortest paths out-of-core.

Builds a random road-network-like graph, lets the paper's selector pick the
best out-of-core implementation for a simulated V100, runs it, and checks a
few distances against a simple Dijkstra.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import solve_apsp
from repro.gpu import Device, V100
from repro.graphs.generators import road_like
from repro.sssp import dijkstra

# 1. A weighted graph. Any CSRGraph works: build one from edge arrays, load
#    a Matrix Market file (repro.graphs.read_matrix_market), or generate one.
graph = road_like(1500, avg_degree=2.6, seed=42)
print(f"graph: {graph}")

# 2. A device. V100/K80 presets mirror the paper's hardware; .scaled(s)
#    shrinks the device to match a scaled-down graph (see DESIGN.md).
device = Device(V100.scaled(1 / 64))
print(f"device: {device.spec.name}, {device.spec.memory_bytes / 2**20:.1f} MiB")

# 3. Solve. algorithm="auto" runs the paper's density filter + cost models;
#    density_scale maps our scaled graph back to paper-equivalent density.
result = solve_apsp(graph, algorithm="auto", device=device, density_scale=1 / 64)

report = result.stats["selection"]
print(f"\nselector: density band {report.band!r}, candidates {report.candidates}")
for name, est in report.estimates.items():
    print(f"  estimated {name}: {est.total_seconds * 1e3:.2f} ms")
print(f"selected: {result.algorithm}")
print(f"simulated execution time: {result.simulated_seconds * 1e3:.2f} ms")

# 4. Use the distances.
print(f"\ndistance 0 -> 7: {result.distance(0, 7):g}")
row = result.row(0)
reachable = np.isfinite(row).sum()
print(f"vertex 0 reaches {reachable}/{graph.num_vertices} vertices")
print(f"eccentricity of vertex 0: {row[np.isfinite(row)].max():g}")

# 5. Verify against a plain Dijkstra.
expected, _ = dijkstra(graph, 0)
assert np.allclose(row, expected)
print("\nverified against Dijkstra ✓")
