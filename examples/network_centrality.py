#!/usr/bin/env python
"""Network analytics from an out-of-core APSP run.

The paper's motivating applications (routing, traffic, sensor networks)
consume the distance matrix through aggregate queries. This example solves
APSP on a sensor-network-like geometric graph, then answers the classic
questions — where is the network's center? which nodes are most central?
where should a single gateway go? — using the streaming analysis layer,
which works unchanged on RAM- or disk-backed results.

Run:  python examples/network_centrality.py
"""

import numpy as np

from repro.analysis import (
    center_vertices,
    closeness_centrality,
    distance_statistics,
    diameter,
    harmonic_centrality,
    one_center,
    one_median,
    radius,
)
from repro.core import solve_apsp
from repro.gpu import Device, V100
from repro.graphs.generators import random_geometric
from repro.graphs.properties import largest_component

SCALE = 1 / 64

# A 2-D sensor field: nodes connected within radio range.
field = random_geometric(1200, 0.06, seed=13, name="sensor-field")
network, node_ids = largest_component(field)
print(f"sensor field: {field}")
print(f"main component: {network.num_vertices} nodes "
      f"({field.num_vertices - network.num_vertices} unreachable dropped)")

result = solve_apsp(
    network, algorithm="auto", device=Device(V100.scaled(SCALE)),
    density_scale=SCALE,
)
print(f"solved with {result.algorithm} in "
      f"{result.simulated_seconds * 1e3:.1f} ms simulated")

# --- global shape ---------------------------------------------------------
stats = distance_statistics(result)
print(f"\nhop-weighted distances: mean {stats.mean:.1f}, median {stats.p50:.1f}, "
      f"p95 {stats.p95:.1f}, max {stats.max:.0f}")
print(f"diameter {diameter(result):.0f}, radius {radius(result):.0f}")
print(f"center vertices: {center_vertices(result).tolist()[:6]}")

# --- who matters ----------------------------------------------------------
clo = closeness_centrality(result)
har = harmonic_centrality(result)
top = np.argsort(-clo)[:5]
print("\ntop-5 closeness:", [(int(v), round(float(clo[v]), 4)) for v in top])
assert np.argmax(har) in np.argsort(-clo)[:20]  # the two measures agree broadly

# --- gateway placement ----------------------------------------------------
median_v, mean_d = one_median(result)
center_v, worst_d = one_center(result)
print(f"\n1-median gateway (min average latency): node {median_v} "
      f"(mean distance {mean_d:.1f})")
print(f"1-center gateway (min worst-case latency): node {center_v} "
      f"(eccentricity {worst_d:.0f})")
print(f"(original field ids: {node_ids[median_v]}, {node_ids[center_v]})")
