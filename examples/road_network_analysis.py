#!/usr/bin/env python
"""Road-network analysis with the out-of-core boundary algorithm.

The scenario from the paper's introduction: traffic simulation and routing
need all-pairs distances over a road network whose n×n output dwarfs GPU
memory. Road networks have a small separator, so the boundary algorithm is
the right tool (paper Fig 2). This example:

1. builds a USRoads-like network,
2. partitions it and inspects the separator (Table III columns),
3. runs the out-of-core boundary algorithm with both optimisations,
4. derives routing facts: graph diameter (of a sample), per-vertex
   eccentricity, the most central depot among candidates.

Run:  python examples/road_network_analysis.py
"""

import numpy as np

from repro.core import ooc_boundary, plan_boundary
from repro.gpu import Device, V100
from repro.graphs.generators import road_like
from repro.graphs.suite import DEFAULT_SCALE
from repro.partition import classify_separator

SCALE = DEFAULT_SCALE
graph = road_like(2000, avg_degree=2.6, seed=7, name="roads")
print(f"network: {graph}")

# --- separator analysis (why the boundary algorithm fits) ---------------
info = classify_separator(graph, seed=0)
print(
    f"separator: {info.num_boundary} boundary vertices over {info.num_parts} "
    f"parts; ideal √(kn) = {info.ideal_boundary:.0f}; "
    f"ratio {info.ratio:.2f} -> {'small' if info.small_separator else 'large'} separator"
)

# --- plan + run ----------------------------------------------------------
spec = V100.scaled(SCALE)
plan = plan_boundary(graph, spec, seed=0)
print(
    f"plan: k={plan.num_components} components (max {plan.max_component} "
    f"vertices), boundary matrix {plan.num_boundary}², batched transfers of "
    f"{plan.n_row} block-rows × {plan.num_buffers} buffers"
)

device = Device(spec)
result = ooc_boundary(graph, device, plan=plan)
stats = result.stats
print(
    f"executed in {result.simulated_seconds * 1e3:.1f} ms simulated "
    f"({stats['compute_seconds'] * 1e3:.1f} ms compute, "
    f"{stats['transfer_seconds'] * 1e3:.1f} ms transfers, "
    f"{stats['num_transfers']} copies)"
)

# --- routing facts from the distance matrix ------------------------------
dist = result.to_array()
finite = np.isfinite(dist)
print(f"\nreachable pairs: {finite.sum()}/{dist.size}")

ecc = np.where(finite, dist, 0).max(axis=1)
print(f"diameter (max eccentricity): {ecc.max():g}")
print(f"radius   (min eccentricity): {ecc.min():g}")

rng = np.random.default_rng(0)
depots = rng.choice(graph.num_vertices, size=8, replace=False)
mean_dist = np.where(finite, dist, np.nan)[depots].mean(axis=1)
best = depots[int(np.nanargmin(mean_dist))]
print(f"best depot of {depots.tolist()}: vertex {best} "
      f"(mean distance {np.nanmin(mean_dist):.1f})")

# --- what the optimisations bought ---------------------------------------
naive = ooc_boundary(graph, Device(spec), batch_transfers=False, overlap=False)
print(
    f"\nwithout transfer batching/overlap: {naive.simulated_seconds * 1e3:.1f} ms "
    f"({naive.simulated_seconds / result.simulated_seconds:.2f}x slower)"
)
